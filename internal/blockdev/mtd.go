package blockdev

import (
	"fmt"
	"sync"
	"time"

	"mcfs/internal/fault"
	"mcfs/internal/obs"
	"mcfs/internal/simclock"
)

// MTD simulates an in-RAM flash character device, the stand-in for the
// mtdram kernel module the paper loads so JFFS2 has a device to mount.
//
// Flash semantics: the device is divided into erase blocks; bits can only
// be programmed from the erased state (0xFF) toward 0, so rewriting a
// region requires erasing its whole block first. JFFS2 is log-structured
// precisely to live within these rules.
type MTD struct {
	mu         sync.Mutex
	name       string
	data       []byte
	eraseSize  int
	clock      *simclock.Clock
	eraseCount []int64 // per-block erase counter (wear tracking)

	programCost time.Duration // per KiB programmed
	eraseCost   time.Duration // per block erase

	inj *fault.Injector // schedulable fault plane (nil = no faults)

	// Observability counters (nil unless SetObs was called).
	ctrReads, ctrWrites, ctrErases *obs.Counter
}

// SetObs attaches an observability hub, registering the device's read,
// write (program), and erase counters under "blockdev.<name>.reads",
// ".writes", and ".erases". Nil-safe.
func (m *MTD) SetObs(h *obs.Hub) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctrReads = h.Counter("blockdev." + m.name + ".reads")
	m.ctrWrites = h.Counter("blockdev." + m.name + ".writes")
	m.ctrErases = h.Counter("blockdev." + m.name + ".erases")
}

// NewMTD returns a flash device of the given size with the given erase
// block size. Size must be a multiple of eraseSize. The device starts
// fully erased (all 0xFF).
func NewMTD(name string, size int64, eraseSize int, clock *simclock.Clock) *MTD {
	if eraseSize <= 0 || size <= 0 || size%int64(eraseSize) != 0 {
		panic(fmt.Sprintf("blockdev: bad MTD geometry size=%d erase=%d", size, eraseSize))
	}
	m := &MTD{
		name:        name,
		data:        make([]byte, size),
		eraseSize:   eraseSize,
		clock:       clock,
		eraseCount:  make([]int64, size/int64(eraseSize)),
		programCost: 8 * time.Microsecond, // NOR-flash-like program speed per KiB
		eraseCost:   400 * time.Microsecond,
	}
	for i := range m.data {
		m.data[i] = 0xFF
	}
	return m
}

// ErrNotErased is returned when a program operation would need to flip a
// bit from 0 to 1, which flash cannot do without an erase.
var ErrNotErased = fmt.Errorf("blockdev: programming non-erased flash")

// Size returns the device capacity in bytes.
func (m *MTD) Size() int64 { return int64(len(m.data)) }

// EraseSize returns the erase block size in bytes.
func (m *MTD) EraseSize() int { return m.eraseSize }

// Name identifies the device in logs.
func (m *MTD) Name() string { return m.name }

// ReadAt fills p from flash starting at off.
func (m *MTD) ReadAt(p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("%w: off=%d len=%d size=%d dev=%s", ErrOutOfRange, off, len(p), len(m.data), m.name)
	}
	if err := m.inj.OnRead(off, len(p)); err != nil {
		m.ctrReads.Inc()
		return err
	}
	copy(p, m.data[off:])
	m.ctrReads.Inc()
	m.charge(time.Duration((len(p)+1023)/1024) * time.Microsecond)
	return nil
}

// Program writes p at off. Every byte written must only clear bits (the
// region must have been erased, or already hold a superset of the bits).
func (m *MTD) Program(p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("%w: off=%d len=%d size=%d dev=%s", ErrOutOfRange, off, len(p), len(m.data), m.name)
	}
	for i, b := range p {
		cur := m.data[off+int64(i)]
		if cur&b != b {
			return fmt.Errorf("%w: off=%d dev=%s", ErrNotErased, off+int64(i), m.name)
		}
	}
	dec := m.inj.OnWrite(off, len(p))
	if dec.Err != nil {
		return dec.Err
	}
	n := len(p)
	if dec.Persist >= 0 && dec.Persist < n {
		n = dec.Persist // torn program: only the prefix reaches the flash
	}
	copy(m.data[off:], p[:n])
	if dec.FlipBit >= 0 && dec.FlipBit < int64(len(p))*8 {
		m.data[off+dec.FlipBit/8] ^= 1 << uint(dec.FlipBit%8)
	}
	m.ctrWrites.Inc()
	m.charge(time.Duration((len(p)+1023)/1024) * m.programCost)
	if dec.Capture {
		img := make([]byte, len(m.data))
		copy(img, m.data)
		m.inj.SetCrashImage(img)
	}
	return nil
}

// Erase resets erase block idx to all 0xFF.
func (m *MTD) Erase(idx int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx < 0 || idx >= len(m.eraseCount) {
		return fmt.Errorf("%w: erase block %d of %d dev=%s", ErrOutOfRange, idx, len(m.eraseCount), m.name)
	}
	start := idx * m.eraseSize
	// An erase is one window event too (crash points can fall right after
	// it), but it is atomic: torn/corrupt decisions don't apply.
	dec := m.inj.OnWrite(int64(start), m.eraseSize)
	if dec.Err != nil {
		return dec.Err
	}
	for i := 0; i < m.eraseSize; i++ {
		m.data[start+i] = 0xFF
	}
	m.eraseCount[idx]++
	m.ctrErases.Inc()
	m.charge(m.eraseCost)
	if dec.Capture {
		img := make([]byte, len(m.data))
		copy(img, m.data)
		m.inj.SetCrashImage(img)
	}
	return nil
}

// EraseCounts returns a copy of the per-block erase counters.
func (m *MTD) EraseCounts() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.eraseCount))
	copy(out, m.eraseCount)
	return out
}

func (m *MTD) charge(d time.Duration) {
	if m.clock != nil {
		m.clock.Advance(d)
	}
}

// SetInjector attaches a fault-injection plane (nil detaches). Program
// and Erase each count as one fault-window event.
func (m *MTD) SetInjector(inj *fault.Injector) {
	m.mu.Lock()
	m.inj = inj
	m.mu.Unlock()
}

// Injector returns the attached fault plane (nil when none).
func (m *MTD) Injector() *fault.Injector {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inj
}

// LoadImage implements ImageLoader: img becomes the flash contents with
// no I/O charge, no erase-count change, and no fault-plane consultation
// — the state a power cut leaves behind.
func (m *MTD) LoadImage(img []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(img) != len(m.data) {
		return fmt.Errorf("blockdev: load image size %d != device size %d (%s)", len(img), len(m.data), m.name)
	}
	copy(m.data, img)
	return nil
}

// MTDBlock bridges an MTD device to the Device interface, the stand-in
// for the mtdblock kernel module. The paper loads mtdblock so that Spin
// can mmap the flash contents through a block device; MCFS likewise takes
// snapshots of JFFS2's persistent state through this bridge.
//
// Like the real mtdblock, writes are implemented read-modify-erase-program
// on whole erase blocks, which is slow and wears the flash; JFFS2 itself
// never writes through the bridge (it programs the MTD directly), the
// bridge exists for state capture.
type MTDBlock struct {
	mtd *MTD
}

// NewMTDBlock wraps an MTD device in the block interface.
func NewMTDBlock(mtd *MTD) *MTDBlock { return &MTDBlock{mtd: mtd} }

// ReadAt implements Device.
func (b *MTDBlock) ReadAt(p []byte, off int64) error { return b.mtd.ReadAt(p, off) }

// WriteAt implements Device via read-modify-erase-program of every erase
// block the range touches.
func (b *MTDBlock) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > b.mtd.Size() {
		return fmt.Errorf("%w: off=%d len=%d size=%d dev=%s", ErrOutOfRange, off, len(p), b.mtd.Size(), b.mtd.Name())
	}
	es := int64(b.mtd.EraseSize())
	for len(p) > 0 {
		blk := off / es
		blkStart := blk * es
		// Read the whole erase block, merge, erase, reprogram.
		buf := make([]byte, es)
		if err := b.mtd.ReadAt(buf, blkStart); err != nil {
			return err
		}
		n := copy(buf[off-blkStart:], p)
		if err := b.mtd.Erase(int(blk)); err != nil {
			return err
		}
		if err := b.mtd.Program(buf, blkStart); err != nil {
			return err
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Size implements Device.
func (b *MTDBlock) Size() int64 { return b.mtd.Size() }

// BlockSize implements Device.
func (b *MTDBlock) BlockSize() int { return b.mtd.EraseSize() }

// Sync implements Device; flash has no volatile cache, so this is a no-op.
func (b *MTDBlock) Sync() error { return nil }

// Snapshot implements Device.
func (b *MTDBlock) Snapshot() ([]byte, error) {
	img := make([]byte, b.mtd.Size())
	if err := b.mtd.ReadAt(img, 0); err != nil {
		return nil, err
	}
	return img, nil
}

// Restore implements Device.
func (b *MTDBlock) Restore(img []byte) error {
	if int64(len(img)) != b.mtd.Size() {
		return fmt.Errorf("blockdev: restore image size %d != device size %d (%s)", len(img), b.mtd.Size(), b.mtd.Name())
	}
	es := b.mtd.EraseSize()
	for blk := 0; int64(blk*es) < b.mtd.Size(); blk++ {
		if err := b.mtd.Erase(blk); err != nil {
			return err
		}
		if err := b.mtd.Program(img[blk*es:(blk+1)*es], int64(blk*es)); err != nil {
			return err
		}
	}
	return nil
}

// LoadImage implements ImageLoader by delegating to the MTD device.
func (b *MTDBlock) LoadImage(img []byte) error { return b.mtd.LoadImage(img) }

// Name implements Device.
func (b *MTDBlock) Name() string { return b.mtd.Name() + "block" }
