// Package simclock provides the virtual clock that every simulated
// component in MCFS charges time against.
//
// The paper reports model-checking rates (operations per second of real
// time) measured on a 16-core VM driving real kernels and devices. This
// reproduction replaces real time with a deterministic virtual clock:
// simulated devices charge seek and transfer latencies, trackers charge
// snapshot latencies, and the explorer charges per-operation CPU costs.
// Benchmarks then compute ops/s from virtual elapsed time, so every run
// reproduces the paper's *relative* speeds exactly and in milliseconds of
// wall-clock time.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. It is safe for
// concurrent use; swarm workers in the explorer share one clock.
//
// The zero value is a valid clock at time zero.
type Clock struct {
	mu  sync.Mutex
	now time.Duration // guarded by mu
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: simulated costs are never refunds.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d <= 0 {
		c.mu.Lock()
		now := c.now
		c.mu.Unlock()
		return now
	}
	c.mu.Lock()
	c.now += d
	now := c.now
	c.mu.Unlock()
	return now
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset rewinds the clock to zero. Only tests and benchmark harnesses
// call this, between independent runs.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Stopwatch measures a span of virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// Watch starts a stopwatch at the clock's current time.
func Watch(c *Clock) Stopwatch { return Stopwatch{clock: c, start: c.Now()} }

// Elapsed returns the virtual time accumulated since the stopwatch began.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Rate converts an event count over a virtual duration into events per
// virtual second. A zero or negative duration yields 0 rather than Inf so
// callers can print rates unconditionally.
func Rate(events int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Seconds()
}

// FormatRate renders an events/second value the way the paper's Figure 2
// labels do, e.g. "228.6 ops/s".
func FormatRate(rate float64) string {
	return fmt.Sprintf("%.1f ops/s", rate)
}
