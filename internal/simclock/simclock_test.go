package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvanceAndNow(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", got)
	}
}

func TestAdvanceIgnoresNonPositive(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	if got := c.Advance(-time.Second); got != time.Second {
		t.Errorf("Advance(-1s) returned %v, want 1s", got)
	}
	if got := c.Advance(0); got != time.Second {
		t.Errorf("Advance(0) returned %v, want 1s", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset, Now() = %v", c.Now())
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Now(); got != want {
		t.Errorf("concurrent advance total = %v, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	sw := Watch(c)
	c.Advance(250 * time.Millisecond)
	if got := sw.Elapsed(); got != 250*time.Millisecond {
		t.Errorf("Elapsed() = %v, want 250ms", got)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(500, time.Second); got != 500 {
		t.Errorf("Rate(500, 1s) = %v", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate over zero duration = %v, want 0", got)
	}
	if got := Rate(100, -time.Second); got != 0 {
		t.Errorf("Rate over negative duration = %v, want 0", got)
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(228.64); got != "228.6 ops/s" {
		t.Errorf("FormatRate = %q", got)
	}
}
