// Package kernel simulates the operating system kernel that sits between
// the MCFS driver and the file systems under test.
//
// It provides the pieces of a real kernel that the paper's challenges
// revolve around (§3):
//
//   - a mount table with mount, unmount, and remount;
//   - a dentry cache (positive and negative entries) and an inode
//     attribute cache in front of every mount — the in-memory state that
//     goes stale when a model checker restores persistent state without
//     remounting (§3.2), and the cache a FUSE file system must explicitly
//     invalidate after restoring its own state (§6's second VeriFS1 bug);
//   - a file-descriptor table, so open/read/write/close sequences behave
//     like real syscalls;
//   - syscall entry points returning POSIX errnos, used verbatim by the
//     checker for cross-file-system comparison.
//
// Operations are serialized by the caller (the explorer is single-driver
// per kernel instance), matching the paper's one-syscall-at-a-time
// exploration.
package kernel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mcfs/internal/blockdev"
	"mcfs/internal/errno"
	"mcfs/internal/obs"
	"mcfs/internal/simclock"
	"mcfs/internal/vfs"
)

// syscallCost is the fixed CPU cost charged per syscall entry.
const syscallCost = 8 * time.Microsecond

// MaxSymlinkDepth bounds symlink resolution, like Linux's ELOOP limit.
const MaxSymlinkDepth = 8

// FilesystemSpec tells the kernel how to mount (and remount) a file
// system instance.
type FilesystemSpec struct {
	// Type is the fs type name used in logs ("ext2", "verifs1", ...).
	Type string
	// Dev is the backing device; nil for in-memory file systems.
	Dev blockdev.Device
	// Mounter creates or loads the FS instance. For device-backed file
	// systems it is called again on every remount, reconstructing all
	// in-memory state from the device.
	Mounter func() (vfs.FS, error)
	// Unmounter flushes and detaches an instance; nil means no work.
	Unmounter func(vfs.FS) error
}

// CacheInvalidator lets a file system (via the FUSE notify API) evict
// kernel cache entries it knows are stale — the paper's
// fuse_lowlevel_notify_inval_entry / _inval_inode.
type CacheInvalidator interface {
	// InvalEntry evicts the dentry (parent, name), positive or negative.
	InvalEntry(parent vfs.Ino, name string)
	// InvalInode evicts the cached attributes of ino.
	InvalInode(ino vfs.Ino)
	// InvalAll evicts everything for the mount.
	InvalAll()
}

// InvalidatorBinder is implemented by file systems (the FUSE client
// adapter) that need a channel back into the kernel caches.
type InvalidatorBinder interface {
	BindCacheInvalidator(ci CacheInvalidator)
}

type dkey struct {
	parent vfs.Ino
	name   string
}

// Mount is one mounted file system.
type Mount struct {
	point string
	spec  FilesystemSpec
	fs    vfs.FS
	sync  bool // mount -o sync: flush after every operation

	dcache   map[dkey]vfs.Ino // positive dentries
	negcache map[dkey]bool    // negative dentries
	acache   map[vfs.Ino]vfs.Stat

	// cache statistics, for tests and the performance model
	dcacheHits, dcacheMisses int64
}

// FS exposes the mounted file system instance (tests and trackers use it).
func (m *Mount) FS() vfs.FS { return m.fs }

// Point returns the mount point path.
func (m *Mount) Point() string { return m.point }

// Type returns the file system type name.
func (m *Mount) Type() string { return m.spec.Type }

// Dev returns the backing device (nil for in-memory file systems).
func (m *Mount) Dev() blockdev.Device { return m.spec.Dev }

// CacheStats reports dentry-cache hits and misses since mount.
func (m *Mount) CacheStats() (hits, misses int64) { return m.dcacheHits, m.dcacheMisses }

// Spec returns the filesystem spec the mount was created with, so
// trackers can remount it.
func (m *Mount) Spec() FilesystemSpec { return m.spec }

// Options returns the mount options.
func (m *Mount) Options() MountOptions { return MountOptions{Sync: m.sync} }

// mountInvalidator implements CacheInvalidator for one mount.
type mountInvalidator struct{ m *Mount }

func (mi mountInvalidator) InvalEntry(parent vfs.Ino, name string) {
	delete(mi.m.dcache, dkey{parent, name})
	delete(mi.m.negcache, dkey{parent, name})
}

func (mi mountInvalidator) InvalInode(ino vfs.Ino) {
	delete(mi.m.acache, ino)
}

func (mi mountInvalidator) InvalAll() {
	mi.m.dcache = make(map[dkey]vfs.Ino)
	mi.m.negcache = make(map[dkey]bool)
	mi.m.acache = make(map[vfs.Ino]vfs.Stat)
}

// FD is a file descriptor.
type FD int

type openFile struct {
	mount *Mount
	ino   vfs.Ino
	flags vfs.OpenFlag
	pos   int64
}

// Kernel is one simulated kernel instance. A model-checking run uses one
// kernel with every file system under test mounted side by side.
type Kernel struct {
	clock  *simclock.Clock
	mounts map[string]*Mount
	fds    map[FD]*openFile
	nextFD FD

	syscalls int64

	// Observability handles, nil unless SetObs was called: every
	// syscall entry opens a LayerKernel span and bumps the syscall
	// counter; Remount records its latency histogram.
	obsHub      *obs.Hub
	ctrSyscalls *obs.Counter
	histRemount *obs.Histogram

	// UID/GID the driver "process" runs as; MCFS runs as root.
	UID, GID uint32
}

// New returns a kernel with an empty mount table.
func New(clock *simclock.Clock) *Kernel {
	return &Kernel{
		clock:  clock,
		mounts: make(map[string]*Mount),
		fds:    make(map[FD]*openFile),
		nextFD: 3, // 0,1,2 taken, as ever
	}
}

// Clock returns the kernel's virtual clock.
func (k *Kernel) Clock() *simclock.Clock { return k.clock }

// SetObs attaches an observability hub. Passing nil detaches it; all
// instrumentation is nil-safe either way.
func (k *Kernel) SetObs(h *obs.Hub) {
	k.obsHub = h
	k.ctrSyscalls = h.Counter(obs.MetricSyscalls)
	k.histRemount = h.Histogram(obs.MetricRemount)
}

func (k *Kernel) charge() {
	k.syscalls++
	k.ctrSyscalls.Inc()
	if k.clock != nil {
		k.clock.Advance(syscallCost)
	}
}

// begin opens the named syscall's kernel span and charges the entry
// cost. Syscall entry points use `defer k.begin("open").End()`: the
// span opens before the CPU charge, so even a no-op syscall has a
// non-zero virtual duration.
func (k *Kernel) begin(name string) obs.SpanHandle {
	sp := k.obsHub.StartSpan(obs.LayerKernel, name)
	k.charge()
	return sp
}

// SyscallCount reports the number of syscalls served since boot; the
// paper's soak experiment counts syscalls, not driver operations ("159
// million syscalls", §5).
func (k *Kernel) SyscallCount() int64 { return k.syscalls }

// MountOptions configures a mount.
type MountOptions struct {
	// Sync flushes the file system after every mutating operation
	// (mount -o sync). The paper tried this to fight cache incoherency;
	// it guarantees flushes but not cache reloads (§3.2).
	Sync bool
}

// Mount attaches a file system at the given mount point.
func (k *Kernel) Mount(point string, spec FilesystemSpec, opts MountOptions) error {
	point = vfs.JoinPath(point)
	if _, ok := k.mounts[point]; ok {
		return fmt.Errorf("kernel: %s already mounted", point)
	}
	fs, err := spec.Mounter()
	if err != nil {
		return fmt.Errorf("kernel: mounting %s at %s: %w", spec.Type, point, err)
	}
	m := &Mount{
		point:    point,
		spec:     spec,
		fs:       fs,
		sync:     opts.Sync,
		dcache:   make(map[dkey]vfs.Ino),
		negcache: make(map[dkey]bool),
		acache:   make(map[vfs.Ino]vfs.Stat),
	}
	if b, ok := fs.(InvalidatorBinder); ok {
		b.BindCacheInvalidator(mountInvalidator{m})
	}
	k.mounts[point] = m
	return nil
}

// Unmount detaches the file system at point, flushing it first. It fails
// with EBUSY while any file descriptor on the mount is open.
func (k *Kernel) Unmount(point string) error {
	point = vfs.JoinPath(point)
	m, ok := k.mounts[point]
	if !ok {
		return fmt.Errorf("kernel: %s not mounted", point)
	}
	for _, of := range k.fds {
		if of.mount == m {
			return errno.EBUSY
		}
	}
	if m.spec.Unmounter != nil {
		if err := m.spec.Unmounter(m.fs); err != nil {
			return err
		}
	}
	delete(k.mounts, point)
	return nil
}

// Remount unmounts and immediately remounts a file system, rebuilding all
// in-memory state from the backing device. This is the paper's
// cache-coherency hammer (§3.2): the only way to guarantee no stale state
// remains in kernel memory.
func (k *Kernel) Remount(point string) error {
	sp := k.obsHub.StartSpan(obs.LayerKernel, "remount")
	start := k.obsHub.Now()
	err := k.remount(point)
	k.histRemount.Observe(k.obsHub.Now() - start)
	sp.End()
	return err
}

func (k *Kernel) remount(point string) error {
	point = vfs.JoinPath(point)
	m, ok := k.mounts[point]
	if !ok {
		return fmt.Errorf("kernel: %s not mounted", point)
	}
	spec := m.spec
	opts := MountOptions{Sync: m.sync}
	if err := k.Unmount(point); err != nil {
		return err
	}
	return k.Mount(point, spec, opts)
}

// CrashRemount simulates power loss at point: every open file descriptor
// and all in-memory mount state (file system instance, dentry/attribute
// caches) are discarded WITHOUT any flush — no Unmounter runs, because a
// power cut does not get to write back dirty state. powerCut then runs
// with the mount gone (it installs the surviving media image on the
// backing device), and the file system is mounted fresh from that image,
// which is where its recovery (journal replay, log scan) executes. A
// mount failure leaves the mount point empty — recovery failed.
func (k *Kernel) CrashRemount(point string, powerCut func() error) error {
	defer k.begin("crash-remount").End()
	point = vfs.JoinPath(point)
	m, ok := k.mounts[point]
	if !ok {
		return fmt.Errorf("kernel: %s not mounted", point)
	}
	for fd, of := range k.fds {
		if of.mount == m {
			delete(k.fds, fd)
		}
	}
	spec := m.spec
	opts := MountOptions{Sync: m.sync}
	delete(k.mounts, point)
	if powerCut != nil {
		if err := powerCut(); err != nil {
			return fmt.Errorf("kernel: power cut at %s: %w", point, err)
		}
	}
	return k.Mount(point, spec, opts)
}

// MountAt returns the mount whose point prefixes path, along with the
// path remainder inside the mount.
func (k *Kernel) MountAt(path string) (*Mount, string, errno.Errno) {
	path = vfs.JoinPath(path)
	best := ""
	for point := range k.mounts {
		if point == "/" || path == point || strings.HasPrefix(path, point+"/") {
			if len(point) > len(best) {
				best = point
			}
		}
	}
	if best == "" {
		return nil, "", errno.ENOENT
	}
	rest := strings.TrimPrefix(path, best)
	return k.mounts[best], rest, errno.OK
}

// Mounts lists the current mounts sorted by mount point.
func (k *Kernel) Mounts() []*Mount {
	out := make([]*Mount, 0, len(k.mounts))
	for _, m := range k.mounts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].point < out[j].point })
	return out
}

// Invalidator returns the cache invalidator for a mount point, used by
// trackers that restore FS state behind the kernel's back and then
// (correctly) flush the caches.
func (k *Kernel) Invalidator(point string) (CacheInvalidator, error) {
	m, ok := k.mounts[vfs.JoinPath(point)]
	if !ok {
		return nil, fmt.Errorf("kernel: %s not mounted", point)
	}
	return mountInvalidator{m}, nil
}

// OpenFDs reports the number of open file descriptors (tests).
func (k *Kernel) OpenFDs() int { return len(k.fds) }

// --- name resolution ------------------------------------------------------

// lookupCached resolves one component through the dentry cache, falling
// back to the file system and populating the cache. This is where stale
// cache state produces the paper's spurious-EEXIST bug.
func (m *Mount) lookupCached(parent vfs.Ino, name string) (vfs.Ino, errno.Errno) {
	if name == "." || name == ".." {
		// Dot entries are never cached; ask the FS.
		return m.fs.Lookup(parent, name)
	}
	key := dkey{parent, name}
	if ino, ok := m.dcache[key]; ok {
		m.dcacheHits++
		return ino, errno.OK
	}
	if m.negcache[key] {
		m.dcacheHits++
		return 0, errno.ENOENT
	}
	m.dcacheMisses++
	ino, e := m.fs.Lookup(parent, name)
	switch e {
	case errno.OK:
		m.dcache[key] = ino
	case errno.ENOENT:
		m.negcache[key] = true
	}
	return ino, e
}

// cacheAdd records a fresh positive dentry (after create/mkdir/rename)
// and instantiates the inode's attributes, the way the VFS pins a new
// inode in the icache alongside its dentry. Pinned attributes are what
// keep a stale dentry "alive" after a file system restores an older
// state behind the kernel's back (§3.2, §6).
func (m *Mount) cacheAdd(parent vfs.Ino, name string, ino vfs.Ino) {
	key := dkey{parent, name}
	m.dcache[key] = ino
	delete(m.negcache, key)
	if st, e := m.fs.Getattr(ino); e == errno.OK {
		m.acache[ino] = st
	}
}

// cacheRemove records a deletion (negative dentry).
func (m *Mount) cacheRemove(parent vfs.Ino, name string) {
	key := dkey{parent, name}
	delete(m.dcache, key)
	m.negcache[key] = true
	// Attribute cache entries for the removed inode are dropped lazily.
}

// getattrCached serves Getattr from the attribute cache.
func (m *Mount) getattrCached(ino vfs.Ino) (vfs.Stat, errno.Errno) {
	if st, ok := m.acache[ino]; ok {
		return st, errno.OK
	}
	st, e := m.fs.Getattr(ino)
	if e == errno.OK {
		m.acache[ino] = st
	}
	return st, e
}

// attrDirty drops the cached attributes after a mutation.
func (m *Mount) attrDirty(ino vfs.Ino) { delete(m.acache, ino) }

// resolved is the result of a path walk.
type resolved struct {
	mount  *Mount
	ino    vfs.Ino // the final inode (0 if missing)
	parent vfs.Ino // directory holding the final component
	name   string  // final component ("" means the mount root itself)
	exists bool
}

// resolve walks path. When followLast is true, a symlink in the final
// component is followed; parents are always followed.
func (k *Kernel) resolve(path string, followLast bool) (resolved, errno.Errno) {
	m, rest, e := k.MountAt(path)
	if e != errno.OK {
		return resolved{}, e
	}
	return k.walk(m, rest, followLast, 0)
}

// walk resolves rest from the mount root; symlink targets starting with
// "/" are interpreted relative to the mount root (mounts are checked in
// isolation, so a mount is its own universe).
func (k *Kernel) walk(m *Mount, rest string, followLast bool, depth int) (resolved, errno.Errno) {
	return k.walkFrom(m, m.fs.Root(), rest, followLast, depth)
}

// walkFrom walks rest starting at directory start instead of the root.
func (k *Kernel) walkFrom(m *Mount, start vfs.Ino, rest string, followLast bool, depth int) (resolved, errno.Errno) {
	if depth > MaxSymlinkDepth {
		return resolved{}, errno.ELOOP
	}
	parts := vfs.SplitPath(rest)
	cur := start
	if len(parts) == 0 {
		return resolved{mount: m, ino: cur, parent: cur, name: "", exists: true}, errno.OK
	}
	for i, comp := range parts {
		last := i == len(parts)-1
		st, e := m.getattrCached(cur)
		if e != errno.OK {
			return resolved{}, e
		}
		if !st.Mode.IsDir() {
			return resolved{}, errno.ENOTDIR
		}
		ino, e := m.lookupCached(cur, comp)
		if e == errno.ENOENT {
			if last {
				return resolved{mount: m, parent: cur, name: comp, exists: false}, errno.OK
			}
			return resolved{}, errno.ENOENT
		}
		if e != errno.OK {
			return resolved{}, e
		}
		cst, e := m.getattrCached(ino)
		if e != errno.OK {
			return resolved{}, e
		}
		if cst.Mode.IsSymlink() && (!last || followLast) {
			sl, ok := m.fs.(vfs.SymlinkFS)
			if !ok {
				return resolved{}, errno.EIO
			}
			target, e2 := sl.Readlink(ino)
			if e2 != errno.OK {
				return resolved{}, e2
			}
			tail := strings.Join(parts[i+1:], "/")
			if strings.HasPrefix(target, "/") {
				return k.walk(m, vfs.JoinPath(target, tail), followLast, depth+1)
			}
			return k.walkFrom(m, cur, vfs.JoinPath(target, tail), followLast, depth+1)
		}
		if last {
			return resolved{mount: m, ino: ino, parent: cur, name: comp, exists: true}, errno.OK
		}
		cur = ino
	}
	return resolved{}, errno.EIO
}

// syncIfNeeded flushes the mount when it was mounted with -o sync. The
// flush's errno is the caller's to return: under -o sync an operation
// has not succeeded until it is on the medium, so a failed writeback
// (device fault, injected or real) must surface as the operation's
// result rather than vanish.
func (m *Mount) syncIfNeeded() errno.Errno {
	if m.sync {
		return m.fs.Sync()
	}
	return errno.OK
}
