package kernel

import (
	"testing"

	"mcfs/internal/blockdev"
	"mcfs/internal/errno"
	"mcfs/internal/fs/extfs"
	"mcfs/internal/fs/verifs1"
	"mcfs/internal/fs/verifs2"
	"mcfs/internal/simclock"
	"mcfs/internal/vfs"
)

// newKernelWithVeriFS2 mounts a fresh VeriFS2 at /mnt.
func newKernelWithVeriFS2(t *testing.T) (*Kernel, *verifs2.FS) {
	t.Helper()
	clk := simclock.New()
	k := New(clk)
	f := verifs2.New(clk)
	spec := FilesystemSpec{
		Type:    "verifs2",
		Mounter: func() (vfs.FS, error) { return f, nil },
	}
	if err := k.Mount("/mnt", spec, MountOptions{}); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return k, f
}

// newKernelWithExt mounts a fresh extfs at /mnt backed by a RAM disk.
func newKernelWithExt(t *testing.T, journal bool) (*Kernel, blockdev.Device) {
	t.Helper()
	clk := simclock.New()
	k := New(clk)
	dev := blockdev.NewRAM("ram0", 256*1024, clk)
	if err := extfs.Mkfs(dev, extfs.MkfsOptions{Journal: journal}); err != nil {
		t.Fatal(err)
	}
	spec := FilesystemSpec{
		Type: "ext2",
		Dev:  dev,
		Mounter: func() (vfs.FS, error) {
			return extfs.Mount(dev, clk)
		},
		Unmounter: func(f vfs.FS) error {
			return f.(*extfs.FS).Unmount()
		},
	}
	if err := k.Mount("/mnt", spec, MountOptions{}); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return k, dev
}

func TestOpenCreateWriteReadClose(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, e := k.Open("/mnt/file", vfs.OCreate|vfs.ORdWr, 0644)
	if e != errno.OK {
		t.Fatalf("Open: %v", e)
	}
	if n, e := k.WriteFD(fd, []byte("hello")); e != errno.OK || n != 5 {
		t.Fatalf("WriteFD = (%d, %v)", n, e)
	}
	if _, e := k.Seek(fd, 0, 0); e != errno.OK {
		t.Fatal(e)
	}
	data, e := k.ReadFD(fd, 100)
	if e != errno.OK || string(data) != "hello" {
		t.Errorf("ReadFD = (%q, %v)", data, e)
	}
	if e := k.Close(fd); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Close(fd); e != errno.EBADF {
		t.Errorf("double close = %v, want EBADF", e)
	}
	if _, e := k.ReadFD(fd, 1); e != errno.EBADF {
		t.Errorf("read after close = %v, want EBADF", e)
	}
}

func TestOpenFlags(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	// O_CREAT|O_EXCL on existing file.
	fd, e := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatal(e)
	}
	k.Close(fd)
	if _, e := k.Open("/mnt/f", vfs.OCreate|vfs.OExcl|vfs.OWrOnly, 0644); e != errno.EEXIST {
		t.Errorf("O_EXCL on existing = %v, want EEXIST", e)
	}
	// Open nonexistent without O_CREAT.
	if _, e := k.Open("/mnt/nope", vfs.ORdOnly, 0); e != errno.ENOENT {
		t.Errorf("open missing = %v, want ENOENT", e)
	}
	// Write on O_RDONLY fd.
	fd, _ = k.Open("/mnt/f", vfs.ORdOnly, 0)
	if _, e := k.WriteFD(fd, []byte("x")); e != errno.EBADF {
		t.Errorf("write on rdonly = %v, want EBADF", e)
	}
	k.Close(fd)
	// O_TRUNC resets content.
	fd, _ = k.Open("/mnt/f", vfs.OWrOnly, 0)
	k.WriteFD(fd, []byte("0123456789"))
	k.Close(fd)
	fd, e = k.Open("/mnt/f", vfs.OWrOnly|vfs.OTrunc, 0)
	if e != errno.OK {
		t.Fatal(e)
	}
	k.Close(fd)
	st, _ := k.Stat("/mnt/f")
	if st.Size != 0 {
		t.Errorf("size after O_TRUNC = %d", st.Size)
	}
	// Opening a dir for writing is EISDIR.
	if e := k.Mkdir("/mnt/d", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if _, e := k.Open("/mnt/d", vfs.OWrOnly, 0); e != errno.EISDIR {
		t.Errorf("open dir for write = %v, want EISDIR", e)
	}
}

func TestOAppend(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/log", vfs.OCreate|vfs.OWrOnly, 0644)
	k.WriteFD(fd, []byte("first"))
	k.Close(fd)
	fd, e := k.Open("/mnt/log", vfs.OWrOnly|vfs.OAppend, 0)
	if e != errno.OK {
		t.Fatal(e)
	}
	k.WriteFD(fd, []byte("+second"))
	k.Close(fd)
	fd, _ = k.Open("/mnt/log", vfs.ORdOnly, 0)
	data, _ := k.ReadFD(fd, 100)
	k.Close(fd)
	if string(data) != "first+second" {
		t.Errorf("append result = %q", data)
	}
}

func TestPathResolutionDotDot(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if e := k.Mkdir("/mnt/a", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Mkdir("/mnt/a/b", 0755); e != errno.OK {
		t.Fatal(e)
	}
	fd, e := k.Open("/mnt/a/b/../../target", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatalf("create via ..: %v", e)
	}
	k.Close(fd)
	if _, e := k.Stat("/mnt/target"); e != errno.OK {
		t.Errorf("target not at root: %v", e)
	}
}

func TestSymlinkResolution(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if e := k.Mkdir("/mnt/real", 0755); e != errno.OK {
		t.Fatal(e)
	}
	fd, _ := k.Open("/mnt/real/file", vfs.OCreate|vfs.OWrOnly, 0644)
	k.WriteFD(fd, []byte("via-symlink"))
	k.Close(fd)
	if e := k.Symlink("/real", "/mnt/abs"); e != errno.OK {
		t.Fatalf("Symlink: %v", e)
	}
	if e := k.Symlink("real/file", "/mnt/rel"); e != errno.OK {
		t.Fatal(e)
	}
	// Follow absolute symlink mid-path.
	st, e := k.Stat("/mnt/abs/file")
	if e != errno.OK || st.Size != 11 {
		t.Errorf("via abs symlink = (%+v, %v)", st, e)
	}
	// Follow relative symlink at the end.
	st, e = k.Stat("/mnt/rel")
	if e != errno.OK || st.Size != 11 {
		t.Errorf("via rel symlink = (%+v, %v)", st, e)
	}
	// Lstat does not follow.
	st, e = k.Lstat("/mnt/rel")
	if e != errno.OK || !st.Mode.IsSymlink() {
		t.Errorf("Lstat = (%+v, %v)", st, e)
	}
	// Readlink.
	target, e := k.Readlink("/mnt/rel")
	if e != errno.OK || target != "real/file" {
		t.Errorf("Readlink = (%q, %v)", target, e)
	}
}

func TestSymlinkLoopELOOP(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if e := k.Symlink("/b", "/mnt/a"); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Symlink("/a", "/mnt/b"); e != errno.OK {
		t.Fatal(e)
	}
	if _, e := k.Stat("/mnt/a"); e != errno.ELOOP {
		t.Errorf("symlink loop = %v, want ELOOP", e)
	}
}

func TestMkdirRmdirUnlink(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if e := k.Mkdir("/mnt/d", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Mkdir("/mnt/d", 0755); e != errno.EEXIST {
		t.Errorf("mkdir twice = %v", e)
	}
	fd, _ := k.Open("/mnt/d/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.Close(fd)
	if e := k.Rmdir("/mnt/d"); e != errno.ENOTEMPTY {
		t.Errorf("rmdir non-empty = %v", e)
	}
	if e := k.Unlink("/mnt/d/f"); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Rmdir("/mnt/d"); e != errno.OK {
		t.Errorf("rmdir = %v", e)
	}
	if e := k.Unlink("/mnt/nope"); e != errno.ENOENT {
		t.Errorf("unlink missing = %v", e)
	}
}

func TestRenameAcrossMountsEXDEV(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	clk := k.Clock()
	f2 := verifs2.New(clk)
	if err := k.Mount("/other", FilesystemSpec{
		Type:    "verifs2",
		Mounter: func() (vfs.FS, error) { return f2, nil },
	}, MountOptions{}); err != nil {
		t.Fatal(err)
	}
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.Close(fd)
	if e := k.Rename("/mnt/f", "/other/f"); e != errno.EXDEV {
		t.Errorf("cross-mount rename = %v, want EXDEV", e)
	}
}

func TestRenameOnVeriFS1IsENOSYS(t *testing.T) {
	clk := simclock.New()
	k := New(clk)
	f := verifs1.New(clk)
	if err := k.Mount("/mnt", FilesystemSpec{
		Type:    "verifs1",
		Mounter: func() (vfs.FS, error) { return f, nil },
	}, MountOptions{}); err != nil {
		t.Fatal(err)
	}
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.Close(fd)
	if e := k.Rename("/mnt/f", "/mnt/g"); e != errno.ENOSYS {
		t.Errorf("rename on VeriFS1 = %v, want ENOSYS", e)
	}
	if e := k.Symlink("t", "/mnt/s"); e != errno.ENOSYS {
		t.Errorf("symlink on VeriFS1 = %v, want ENOSYS", e)
	}
}

func TestRenameHardLinkSameInodeKeepsBothNames(t *testing.T) {
	// rename(2) of one hard link onto another link of the same inode is
	// a POSIX no-op. A buggy kernel would plant a negative dentry for
	// the source name, making a live file invisible to lookups.
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/a", vfs.OCreate|vfs.OWrOnly, 0644)
	k.Close(fd)
	if e := k.Link("/mnt/a", "/mnt/b"); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Rename("/mnt/a", "/mnt/b"); e != errno.OK {
		t.Fatalf("same-inode rename: %v", e)
	}
	if _, e := k.Stat("/mnt/a"); e != errno.OK {
		t.Errorf("source name vanished from lookups after no-op rename: %v", e)
	}
	if _, e := k.Stat("/mnt/b"); e != errno.OK {
		t.Errorf("dest name missing: %v", e)
	}
}

func TestUnmountBusyWithOpenFD(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	if err := k.Unmount("/mnt"); err != errno.EBUSY {
		t.Errorf("unmount with open fd = %v, want EBUSY", err)
	}
	k.Close(fd)
	if err := k.Unmount("/mnt"); err != nil {
		t.Errorf("unmount after close = %v", err)
	}
}

func TestRemountRebuildsFromDisk(t *testing.T) {
	k, _ := newKernelWithExt(t, false)
	fd, e := k.Open("/mnt/keep", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatal(e)
	}
	k.WriteFD(fd, []byte("durable"))
	k.Close(fd)
	if err := k.Remount("/mnt"); err != nil {
		t.Fatalf("Remount: %v", err)
	}
	fd, e = k.Open("/mnt/keep", vfs.ORdOnly, 0)
	if e != errno.OK {
		t.Fatalf("open after remount: %v", e)
	}
	data, _ := k.ReadFD(fd, 100)
	k.Close(fd)
	if string(data) != "durable" {
		t.Errorf("data after remount = %q", data)
	}
}

func TestDcacheServesRepeatLookups(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if e := k.Mkdir("/mnt/dir", 0755); e != errno.OK {
		t.Fatal(e)
	}
	m, _, _ := k.MountAt("/mnt")
	_, missesBefore := m.CacheStats()
	for i := 0; i < 5; i++ {
		if _, e := k.Stat("/mnt/dir"); e != errno.OK {
			t.Fatal(e)
		}
	}
	hits, misses := m.CacheStats()
	if misses != missesBefore {
		t.Errorf("repeat lookups missed the dcache: %d -> %d", missesBefore, misses)
	}
	if hits == 0 {
		t.Error("no dcache hits recorded")
	}
}

func TestNegativeDentryCaching(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	if _, e := k.Stat("/mnt/ghost"); e != errno.ENOENT {
		t.Fatal(e)
	}
	m, _, _ := k.MountAt("/mnt")
	_, missesBefore := m.CacheStats()
	if _, e := k.Stat("/mnt/ghost"); e != errno.ENOENT {
		t.Fatal(e)
	}
	if _, misses := m.CacheStats(); misses != missesBefore {
		t.Error("negative lookup not served from cache")
	}
	// Creating the file must clear the negative dentry.
	fd, e := k.Open("/mnt/ghost", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatalf("create after negative dentry: %v", e)
	}
	k.Close(fd)
	if _, e := k.Stat("/mnt/ghost"); e != errno.OK {
		t.Errorf("stat after create = %v", e)
	}
}

func TestStaleDcacheCausesSpuriousEEXIST(t *testing.T) {
	// Reproduces the paper's second VeriFS1 bug (§6): the FS restores an
	// older state behind the kernel's back WITHOUT invalidating kernel
	// caches; a subsequent mkdir sees the stale positive dentry and
	// reports EEXIST for a directory that does not exist.
	k, f := newKernelWithVeriFS2(t)
	if e := k.Ioctl("/mnt", vfs.IoctlCheckpoint, 1); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Mkdir("/mnt/testdir", 0755); e != errno.OK {
		t.Fatal(e)
	}
	// Restore the pre-mkdir state directly on the FS (not via ioctl), so
	// no invalidation hook is registered: VeriFS2 created with New() has
	// no onRestore set => simulates the buggy behavior.
	if e := f.RestoreState(1); e != errno.OK {
		t.Fatal(e)
	}
	// The directory is gone in the FS...
	if _, e := f.Lookup(f.Root(), "testdir"); e != errno.ENOENT {
		t.Fatalf("expected testdir gone after restore, got %v", e)
	}
	// ...but the kernel's dcache still has it: spurious EEXIST.
	if e := k.Mkdir("/mnt/testdir", 0755); e != errno.EEXIST {
		t.Fatalf("expected the spurious EEXIST from stale dcache, got %v", e)
	}
	// Correct fix: invalidate kernel caches on restore (the FUSE notify
	// APIs). After that, mkdir works.
	inv, err := k.Invalidator("/mnt")
	if err != nil {
		t.Fatal(err)
	}
	inv.InvalAll()
	if e := k.Mkdir("/mnt/testdir", 0755); e != errno.OK {
		t.Errorf("mkdir after invalidation = %v", e)
	}
}

func TestIoctlCheckpointRestoreRoundtrip(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.WriteFD(fd, []byte("v1"))
	k.Close(fd)
	if e := k.Ioctl("/mnt", vfs.IoctlCheckpoint, 7); e != errno.OK {
		t.Fatalf("checkpoint ioctl: %v", e)
	}
	fd, _ = k.Open("/mnt/f", vfs.OWrOnly|vfs.OTrunc, 0)
	k.WriteFD(fd, []byte("version2"))
	k.Close(fd)
	if e := k.Ioctl("/mnt", vfs.IoctlRestore, 7); e != errno.OK {
		t.Fatalf("restore ioctl: %v", e)
	}
	// VeriFS2's onRestore is unset here, so invalidate manually (the
	// FUSE adapter does this automatically; see internal/fuse).
	inv, _ := k.Invalidator("/mnt")
	inv.InvalAll()
	st, e := k.Stat("/mnt/f")
	if e != errno.OK || st.Size != 2 {
		t.Errorf("after restore: (%+v, %v)", st, e)
	}
}

func TestIoctlOnNonCheckpointerFS(t *testing.T) {
	k, _ := newKernelWithExt(t, false)
	if e := k.Ioctl("/mnt", vfs.IoctlCheckpoint, 1); e != errno.ENOTSUP {
		t.Errorf("checkpoint on ext = %v, want ENOTSUP", e)
	}
}

func TestStatfsAndGetDents(t *testing.T) {
	k, _ := newKernelWithExt(t, false)
	st, e := k.Statfs("/mnt")
	if e != errno.OK || st.TotalBlocks == 0 {
		t.Errorf("Statfs = (%+v, %v)", st, e)
	}
	ents, e := k.GetDents("/mnt")
	if e != errno.OK {
		t.Fatal(e)
	}
	found := false
	for _, de := range ents {
		if de.Name == "lost+found" {
			found = true
		}
	}
	if !found {
		t.Errorf("GetDents misses lost+found: %v", ents)
	}
}

func TestXattrSyscalls(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.Close(fd)
	if e := k.SetXattr("/mnt/f", "user.k", []byte("v")); e != errno.OK {
		t.Fatal(e)
	}
	v, e := k.GetXattr("/mnt/f", "user.k")
	if e != errno.OK || string(v) != "v" {
		t.Errorf("GetXattr = (%q, %v)", v, e)
	}
	names, e := k.ListXattr("/mnt/f")
	if e != errno.OK || len(names) != 1 {
		t.Errorf("ListXattr = (%v, %v)", names, e)
	}
	if e := k.RemoveXattr("/mnt/f", "user.k"); e != errno.OK {
		t.Fatal(e)
	}
	// extfs has no xattrs.
	k2, _ := newKernelWithExt(t, false)
	fd, _ = k2.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k2.Close(fd)
	if e := k2.SetXattr("/mnt/f", "user.k", []byte("v")); e != errno.ENOTSUP {
		t.Errorf("SetXattr on ext = %v, want ENOTSUP", e)
	}
}

func TestSyncMountOptionFlushesEveryOp(t *testing.T) {
	clk := simclock.New()
	k := New(clk)
	dev := blockdev.NewRAM("ram0", 256*1024, clk)
	if err := extfs.Mkfs(dev, extfs.MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	spec := FilesystemSpec{
		Type:      "ext2",
		Dev:       dev,
		Mounter:   func() (vfs.FS, error) { return extfs.Mount(dev, clk) },
		Unmounter: func(f vfs.FS) error { return f.(*extfs.FS).Unmount() },
	}
	if err := k.Mount("/mnt", spec, MountOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	fd, e := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatal(e)
	}
	k.Close(fd)
	// With -o sync the new inode must already be on disk without an
	// explicit fsync: mount a second view and look for it.
	f2, err := extfs.Mount(dev, clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, e := f2.Lookup(f2.Root(), "f"); e != errno.OK {
		t.Errorf("file not on disk despite -o sync: %v", e)
	}
}

func TestChmodChownTruncate(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	k.WriteFD(fd, []byte("0123456789"))
	k.Close(fd)
	if e := k.Chmod("/mnt/f", 0600); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Chown("/mnt/f", 42, 43); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.Truncate("/mnt/f", 4); e != errno.OK {
		t.Fatal(e)
	}
	st, _ := k.Stat("/mnt/f")
	if st.Mode.Perm() != 0600 || st.UID != 42 || st.GID != 43 || st.Size != 4 {
		t.Errorf("after chmod/chown/truncate: %+v", st)
	}
}

func TestMountAtLongestPrefix(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	clk := k.Clock()
	f2 := verifs2.New(clk)
	if err := k.Mount("/mnt/inner", FilesystemSpec{
		Type:    "verifs2",
		Mounter: func() (vfs.FS, error) { return f2, nil },
	}, MountOptions{}); err != nil {
		t.Fatal(err)
	}
	m, rest, e := k.MountAt("/mnt/inner/x/y")
	if e != errno.OK || m.Point() != "/mnt/inner" || rest != "/x/y" {
		t.Errorf("MountAt = (%v, %q, %v)", m.Point(), rest, e)
	}
	m, rest, e = k.MountAt("/mnt/file")
	if e != errno.OK || m.Point() != "/mnt" || rest != "/file" {
		t.Errorf("MountAt = (%v, %q, %v)", m.Point(), rest, e)
	}
	if _, _, e := k.MountAt("/elsewhere"); e != errno.ENOENT {
		t.Errorf("MountAt unmounted path = %v", e)
	}
}

func TestSeekWhence(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.ORdWr, 0644)
	defer k.Close(fd)
	k.WriteFD(fd, []byte("0123456789"))
	if pos, e := k.Seek(fd, 2, 0); e != errno.OK || pos != 2 {
		t.Errorf("SEEK_SET = (%d, %v)", pos, e)
	}
	if pos, e := k.Seek(fd, 3, 1); e != errno.OK || pos != 5 {
		t.Errorf("SEEK_CUR = (%d, %v)", pos, e)
	}
	if pos, e := k.Seek(fd, -4, 2); e != errno.OK || pos != 6 {
		t.Errorf("SEEK_END = (%d, %v)", pos, e)
	}
	data, e := k.ReadFD(fd, 4)
	if e != errno.OK || string(data) != "6789" {
		t.Errorf("read after seek = (%q, %v)", data, e)
	}
	if _, e := k.Seek(fd, -100, 0); e != errno.EINVAL {
		t.Errorf("negative seek = %v, want EINVAL", e)
	}
	if _, e := k.Seek(fd, 0, 9); e != errno.EINVAL {
		t.Errorf("bad whence = %v, want EINVAL", e)
	}
}

func TestPReadPWriteDoNotMoveOffset(t *testing.T) {
	k, _ := newKernelWithVeriFS2(t)
	fd, _ := k.Open("/mnt/f", vfs.OCreate|vfs.ORdWr, 0644)
	defer k.Close(fd)
	k.WriteFD(fd, []byte("base"))
	if _, e := k.PWriteFD(fd, 10, []byte("far")); e != errno.OK {
		t.Fatal(e)
	}
	data, e := k.PReadFD(fd, 10, 3)
	if e != errno.OK || string(data) != "far" {
		t.Errorf("PRead = (%q, %v)", data, e)
	}
	// The sequential offset is still after "base": the next WriteFD
	// appends at position 4.
	if _, e := k.WriteFD(fd, []byte("X")); e != errno.OK {
		t.Fatal(e)
	}
	got, e := k.PReadFD(fd, 0, 5)
	if e != errno.OK || string(got) != "baseX" {
		t.Errorf("offset moved by pread/pwrite: (%q, %v)", got, e)
	}
}

func TestFsyncFD(t *testing.T) {
	k, _ := newKernelWithExt(t, true)
	fd, e := k.Open("/mnt/f", vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatal(e)
	}
	defer k.Close(fd)
	if _, e := k.WriteFD(fd, []byte("durable")); e != errno.OK {
		t.Fatal(e)
	}
	if e := k.FsyncFD(fd); e != errno.OK {
		t.Errorf("FsyncFD = %v", e)
	}
	if e := k.FsyncFD(kernel_badFD); e != errno.EBADF {
		t.Errorf("FsyncFD(bad) = %v, want EBADF", e)
	}
}

const kernel_badFD = FD(9999)
