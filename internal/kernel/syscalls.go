package kernel

import (
	"mcfs/internal/errno"
	"mcfs/internal/vfs"
)

// This file is the kernel's syscall surface. Every entry point takes an
// absolute path (mount point included), resolves it through the dentry
// cache, dispatches to the mounted file system, updates the caches the
// way Linux's VFS would, and returns a POSIX errno.

// Open opens (optionally creating) a file and returns a descriptor.
func (k *Kernel) Open(path string, flags vfs.OpenFlag, mode vfs.Mode) (FD, errno.Errno) {
	defer k.begin("open").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return -1, e
	}
	m := r.mount
	var ino vfs.Ino
	switch {
	case r.exists:
		if flags&OExclCreate == OExclCreate {
			return -1, errno.EEXIST
		}
		st, e2 := m.getattrCached(r.ino)
		if e2 != errno.OK {
			return -1, e2
		}
		if st.Mode.IsDir() && flags.Writable() {
			return -1, errno.EISDIR
		}
		ino = r.ino
		if flags&vfs.OTrunc != 0 && flags.Writable() && st.Mode.IsRegular() {
			zero := int64(0)
			if e2 := m.fs.Setattr(ino, vfs.SetAttr{Size: &zero}); e2 != errno.OK {
				return -1, e2
			}
			m.attrDirty(ino)
			if e2 := m.syncIfNeeded(); e2 != errno.OK {
				return -1, e2
			}
		}
	case flags&vfs.OCreate != 0:
		if r.name == "" {
			return -1, errno.EISDIR
		}
		newIno, e2 := m.fs.Create(r.parent, r.name, mode, k.UID, k.GID)
		if e2 != errno.OK {
			return -1, e2
		}
		m.cacheAdd(r.parent, r.name, newIno)
		m.attrDirty(r.parent)
		if e2 := m.syncIfNeeded(); e2 != errno.OK {
			return -1, e2
		}
		ino = newIno
	default:
		return -1, errno.ENOENT
	}
	fd := k.nextFD
	k.nextFD++
	of := &openFile{mount: m, ino: ino, flags: flags}
	if flags&vfs.OAppend != 0 {
		st, e2 := m.fs.Getattr(ino)
		if e2 != errno.OK {
			return -1, e2
		}
		of.pos = st.Size
	}
	k.fds[fd] = of
	return fd, errno.OK
}

// OExclCreate is the O_CREAT|O_EXCL combination.
const OExclCreate = vfs.OCreate | vfs.OExcl

// Close releases a descriptor.
func (k *Kernel) Close(fd FD) errno.Errno {
	defer k.begin("close").End()
	if _, ok := k.fds[fd]; !ok {
		return errno.EBADF
	}
	delete(k.fds, fd)
	return errno.OK
}

// ReadFD reads up to n bytes at the descriptor's offset, advancing it.
func (k *Kernel) ReadFD(fd FD, n int) ([]byte, errno.Errno) {
	defer k.begin("read").End()
	of, ok := k.fds[fd]
	if !ok {
		return nil, errno.EBADF
	}
	if !of.flags.Readable() {
		return nil, errno.EBADF
	}
	data, e := of.mount.fs.Read(of.ino, of.pos, n)
	if e != errno.OK {
		return nil, e
	}
	of.pos += int64(len(data))
	of.mount.attrDirty(of.ino) // atime moved
	return data, errno.OK
}

// WriteFD writes data at the descriptor's offset, advancing it. With
// O_APPEND the write lands at EOF regardless of the offset.
func (k *Kernel) WriteFD(fd FD, data []byte) (int, errno.Errno) {
	defer k.begin("write").End()
	of, ok := k.fds[fd]
	if !ok {
		return 0, errno.EBADF
	}
	if !of.flags.Writable() {
		return 0, errno.EBADF
	}
	if of.flags&vfs.OAppend != 0 {
		st, e := of.mount.fs.Getattr(of.ino)
		if e != errno.OK {
			return 0, e
		}
		of.pos = st.Size
	}
	n, e := of.mount.fs.Write(of.ino, of.pos, data)
	if e != errno.OK {
		return 0, e
	}
	of.pos += int64(n)
	of.mount.attrDirty(of.ino)
	if e := of.mount.syncIfNeeded(); e != errno.OK {
		return 0, e
	}
	return n, errno.OK
}

// PReadFD reads n bytes at an explicit offset (pread).
func (k *Kernel) PReadFD(fd FD, off int64, n int) ([]byte, errno.Errno) {
	defer k.begin("pread").End()
	of, ok := k.fds[fd]
	if !ok {
		return nil, errno.EBADF
	}
	if !of.flags.Readable() {
		return nil, errno.EBADF
	}
	data, e := of.mount.fs.Read(of.ino, off, n)
	if e != errno.OK {
		return nil, e
	}
	of.mount.attrDirty(of.ino)
	return data, errno.OK
}

// PWriteFD writes data at an explicit offset (pwrite).
func (k *Kernel) PWriteFD(fd FD, off int64, data []byte) (int, errno.Errno) {
	defer k.begin("pwrite").End()
	of, ok := k.fds[fd]
	if !ok {
		return 0, errno.EBADF
	}
	if !of.flags.Writable() {
		return 0, errno.EBADF
	}
	n, e := of.mount.fs.Write(of.ino, off, data)
	if e != errno.OK {
		return 0, e
	}
	of.mount.attrDirty(of.ino)
	if e := of.mount.syncIfNeeded(); e != errno.OK {
		return 0, e
	}
	return n, errno.OK
}

// Seek sets the descriptor offset (whence: 0=set, 1=cur, 2=end).
func (k *Kernel) Seek(fd FD, off int64, whence int) (int64, errno.Errno) {
	defer k.begin("seek").End()
	of, ok := k.fds[fd]
	if !ok {
		return 0, errno.EBADF
	}
	var base int64
	switch whence {
	case 0:
	case 1:
		base = of.pos
	case 2:
		st, e := of.mount.fs.Getattr(of.ino)
		if e != errno.OK {
			return 0, e
		}
		base = st.Size
	default:
		return 0, errno.EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, errno.EINVAL
	}
	of.pos = np
	return np, errno.OK
}

// FsyncFD flushes the file's file system.
func (k *Kernel) FsyncFD(fd FD) errno.Errno {
	defer k.begin("fsync").End()
	of, ok := k.fds[fd]
	if !ok {
		return errno.EBADF
	}
	return of.mount.fs.Sync()
}

// Mkdir creates a directory.
func (k *Kernel) Mkdir(path string, mode vfs.Mode) errno.Errno {
	defer k.begin("mkdir").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if r.exists {
		// NOTE: this EEXIST may come straight from the dentry cache —
		// if a file system restored an older state without invalidating
		// kernel caches, this is the paper's spurious-EEXIST bug (§6).
		return errno.EEXIST
	}
	m := r.mount
	ino, e := m.fs.Mkdir(r.parent, r.name, mode, k.UID, k.GID)
	if e != errno.OK {
		return e
	}
	m.cacheAdd(r.parent, r.name, ino)
	m.attrDirty(r.parent)
	return m.syncIfNeeded()
}

// Rmdir removes an empty directory.
func (k *Kernel) Rmdir(path string) errno.Errno {
	defer k.begin("rmdir").End()
	r, e := k.resolve(path, false)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	if r.name == "" {
		return errno.EBUSY // the mount root
	}
	m := r.mount
	if e := m.fs.Rmdir(r.parent, r.name); e != errno.OK {
		return e
	}
	m.cacheRemove(r.parent, r.name)
	m.attrDirty(r.parent)
	m.attrDirty(r.ino)
	return m.syncIfNeeded()
}

// Unlink removes a file or symlink.
func (k *Kernel) Unlink(path string) errno.Errno {
	defer k.begin("unlink").End()
	r, e := k.resolve(path, false)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	if r.name == "" {
		return errno.EISDIR
	}
	m := r.mount
	if e := m.fs.Unlink(r.parent, r.name); e != errno.OK {
		return e
	}
	m.cacheRemove(r.parent, r.name)
	m.attrDirty(r.parent)
	m.attrDirty(r.ino)
	return m.syncIfNeeded()
}

// Rename moves oldPath to newPath (within one mount).
func (k *Kernel) Rename(oldPath, newPath string) errno.Errno {
	defer k.begin("rename").End()
	ro, e := k.resolve(oldPath, false)
	if e != errno.OK {
		return e
	}
	rn, e := k.resolve(newPath, false)
	if e != errno.OK {
		return e
	}
	if ro.mount != rn.mount {
		return errno.EXDEV
	}
	if !ro.exists {
		return errno.ENOENT
	}
	if ro.name == "" || rn.name == "" {
		return errno.EBUSY
	}
	m := ro.mount
	rfs, ok := m.fs.(vfs.RenameFS)
	if !ok {
		return errno.ENOSYS
	}
	if e := rfs.Rename(ro.parent, ro.name, rn.parent, rn.name); e != errno.OK {
		return e
	}
	if rn.exists && rn.ino == ro.ino {
		// Renaming one hard link onto another link of the same inode is
		// a POSIX no-op: the file system keeps both names, so the caches
		// must not record a deletion.
		return errno.OK
	}
	m.cacheRemove(ro.parent, ro.name)
	m.cacheAdd(rn.parent, rn.name, ro.ino)
	m.attrDirty(ro.parent)
	m.attrDirty(rn.parent)
	m.attrDirty(ro.ino)
	if rn.exists {
		m.attrDirty(rn.ino)
	}
	return m.syncIfNeeded()
}

// Link creates a hard link newPath referring to oldPath's inode.
func (k *Kernel) Link(oldPath, newPath string) errno.Errno {
	defer k.begin("link").End()
	ro, e := k.resolve(oldPath, false)
	if e != errno.OK {
		return e
	}
	rn, e := k.resolve(newPath, true)
	if e != errno.OK {
		return e
	}
	if ro.mount != rn.mount {
		return errno.EXDEV
	}
	if !ro.exists {
		return errno.ENOENT
	}
	if rn.exists {
		return errno.EEXIST
	}
	m := ro.mount
	lfs, ok := m.fs.(vfs.LinkFS)
	if !ok {
		return errno.ENOSYS
	}
	if e := lfs.Link(ro.ino, rn.parent, rn.name); e != errno.OK {
		return e
	}
	m.cacheAdd(rn.parent, rn.name, ro.ino)
	m.attrDirty(ro.ino)
	m.attrDirty(rn.parent)
	return m.syncIfNeeded()
}

// Symlink creates a symbolic link at path pointing to target.
func (k *Kernel) Symlink(target, path string) errno.Errno {
	defer k.begin("symlink").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if r.exists {
		return errno.EEXIST
	}
	m := r.mount
	sfs, ok := m.fs.(vfs.SymlinkFS)
	if !ok {
		return errno.ENOSYS
	}
	ino, e := sfs.Symlink(target, r.parent, r.name, k.UID, k.GID)
	if e != errno.OK {
		return e
	}
	m.cacheAdd(r.parent, r.name, ino)
	m.attrDirty(r.parent)
	return m.syncIfNeeded()
}

// Readlink returns the target of the symlink at path.
func (k *Kernel) Readlink(path string) (string, errno.Errno) {
	defer k.begin("readlink").End()
	r, e := k.resolve(path, false)
	if e != errno.OK {
		return "", e
	}
	if !r.exists {
		return "", errno.ENOENT
	}
	sfs, ok := r.mount.fs.(vfs.SymlinkFS)
	if !ok {
		return "", errno.EINVAL
	}
	return sfs.Readlink(r.ino)
}

// Stat returns metadata, following symlinks.
func (k *Kernel) Stat(path string) (vfs.Stat, errno.Errno) {
	defer k.begin("stat").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return vfs.Stat{}, e
	}
	if !r.exists {
		return vfs.Stat{}, errno.ENOENT
	}
	return r.mount.getattrCached(r.ino)
}

// Lstat returns metadata without following a final symlink.
func (k *Kernel) Lstat(path string) (vfs.Stat, errno.Errno) {
	defer k.begin("lstat").End()
	r, e := k.resolve(path, false)
	if e != errno.OK {
		return vfs.Stat{}, e
	}
	if !r.exists {
		return vfs.Stat{}, errno.ENOENT
	}
	return r.mount.getattrCached(r.ino)
}

// Access reports whether path exists (mode checks are trivial for root,
// which is how MCFS runs).
func (k *Kernel) Access(path string) errno.Errno {
	defer k.begin("access").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	return errno.OK
}

// Chmod updates permission bits.
func (k *Kernel) Chmod(path string, mode vfs.Mode) errno.Errno {
	defer k.begin("chmod").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	m := r.mount
	mp := mode.Perm()
	if e := m.fs.Setattr(r.ino, vfs.SetAttr{Mode: &mp}); e != errno.OK {
		return e
	}
	m.attrDirty(r.ino)
	return m.syncIfNeeded()
}

// Chown updates ownership.
func (k *Kernel) Chown(path string, uid, gid uint32) errno.Errno {
	defer k.begin("chown").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	m := r.mount
	if e := m.fs.Setattr(r.ino, vfs.SetAttr{UID: &uid, GID: &gid}); e != errno.OK {
		return e
	}
	m.attrDirty(r.ino)
	return m.syncIfNeeded()
}

// Truncate sets the file size.
func (k *Kernel) Truncate(path string, size int64) errno.Errno {
	defer k.begin("truncate").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	m := r.mount
	if e := m.fs.Setattr(r.ino, vfs.SetAttr{Size: &size}); e != errno.OK {
		return e
	}
	m.attrDirty(r.ino)
	return m.syncIfNeeded()
}

// GetDents lists a directory (unsorted, exactly as the FS returns it).
func (k *Kernel) GetDents(path string) ([]vfs.DirEntry, errno.Errno) {
	defer k.begin("getdents").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return nil, e
	}
	if !r.exists {
		return nil, errno.ENOENT
	}
	return r.mount.fs.ReadDir(r.ino)
}

// Statfs reports file system usage.
func (k *Kernel) Statfs(path string) (vfs.StatFS, errno.Errno) {
	defer k.begin("statfs").End()
	m, _, e := k.MountAt(path)
	if e != errno.OK {
		return vfs.StatFS{}, e
	}
	return m.fs.StatFS()
}

// SyncFS flushes the file system containing path.
func (k *Kernel) SyncFS(path string) errno.Errno {
	defer k.begin("syncfs").End()
	m, _, e := k.MountAt(path)
	if e != errno.OK {
		return e
	}
	return m.fs.Sync()
}

// Ioctl dispatches an ioctl on path. IoctlCheckpoint/IoctlRestore route
// to the Checkpointer API when the file system provides it (§5);
// IoctlDiscard routes to the optional Discarder API.
func (k *Kernel) Ioctl(path string, cmd uint32, arg uint64) errno.Errno {
	defer k.begin("ioctl").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	m := r.mount
	switch cmd {
	case vfs.IoctlCheckpoint:
		cp, ok := m.fs.(vfs.Checkpointer)
		if !ok {
			return errno.ENOTSUP
		}
		return cp.CheckpointState(arg)
	case vfs.IoctlRestore:
		cp, ok := m.fs.(vfs.Checkpointer)
		if !ok {
			return errno.ENOTSUP
		}
		return cp.RestoreState(arg)
	case vfs.IoctlDiscard:
		dc, ok := m.fs.(vfs.Discarder)
		if !ok {
			return errno.ENOTSUP
		}
		return dc.DiscardState(arg)
	}
	if io, ok := m.fs.(vfs.Ioctler); ok {
		return io.Ioctl(r.ino, cmd, arg)
	}
	return errno.ENOTSUP
}

// SetXattr sets an extended attribute.
func (k *Kernel) SetXattr(path, name string, value []byte) errno.Errno {
	defer k.begin("setxattr").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	xfs, ok := r.mount.fs.(vfs.XattrFS)
	if !ok {
		return errno.ENOTSUP
	}
	if e := xfs.SetXattr(r.ino, name, value); e != errno.OK {
		return e
	}
	r.mount.attrDirty(r.ino)
	return r.mount.syncIfNeeded()
}

// GetXattr reads an extended attribute.
func (k *Kernel) GetXattr(path, name string) ([]byte, errno.Errno) {
	defer k.begin("getxattr").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return nil, e
	}
	if !r.exists {
		return nil, errno.ENOENT
	}
	xfs, ok := r.mount.fs.(vfs.XattrFS)
	if !ok {
		return nil, errno.ENOTSUP
	}
	return xfs.GetXattr(r.ino, name)
}

// ListXattr lists extended attribute names.
func (k *Kernel) ListXattr(path string) ([]string, errno.Errno) {
	defer k.begin("listxattr").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return nil, e
	}
	if !r.exists {
		return nil, errno.ENOENT
	}
	xfs, ok := r.mount.fs.(vfs.XattrFS)
	if !ok {
		return nil, errno.ENOTSUP
	}
	return xfs.ListXattr(r.ino)
}

// RemoveXattr deletes an extended attribute.
func (k *Kernel) RemoveXattr(path, name string) errno.Errno {
	defer k.begin("removexattr").End()
	r, e := k.resolve(path, true)
	if e != errno.OK {
		return e
	}
	if !r.exists {
		return errno.ENOENT
	}
	xfs, ok := r.mount.fs.(vfs.XattrFS)
	if !ok {
		return errno.ENOTSUP
	}
	if e := xfs.RemoveXattr(r.ino, name); e != errno.OK {
		return e
	}
	r.mount.attrDirty(r.ino)
	return r.mount.syncIfNeeded()
}
