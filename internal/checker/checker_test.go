package checker

import (
	"strings"
	"testing"

	"mcfs/internal/blockdev"
	"mcfs/internal/errno"
	"mcfs/internal/fs/extfs"
	"mcfs/internal/fs/verifs1"
	"mcfs/internal/fs/verifs2"
	"mcfs/internal/kernel"
	"mcfs/internal/simclock"
	"mcfs/internal/vfs"
)

// twoVeriFS mounts VeriFS1 at /a and VeriFS2 at /b and returns a checker.
func twoVeriFS(t *testing.T, v2opts ...verifs2.Option) (*kernel.Kernel, *Checker) {
	t.Helper()
	clk := simclock.New()
	k := kernel.New(clk)
	f1 := verifs1.New(clk)
	f2 := verifs2.New(clk, v2opts...)
	if err := k.Mount("/a", kernel.FilesystemSpec{
		Type: "verifs1", Mounter: func() (vfs.FS, error) { return f1, nil },
	}, kernel.MountOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Mount("/b", kernel.FilesystemSpec{
		Type: "verifs2", Mounter: func() (vfs.FS, error) { return f2, nil },
	}, kernel.MountOptions{}); err != nil {
		t.Fatal(err)
	}
	c := New(k, []Target{{Name: "verifs1", MountPoint: "/a"}, {Name: "verifs2", MountPoint: "/b"}})
	return k, c
}

func apply(t *testing.T, k *kernel.Kernel, path, content string) {
	t.Helper()
	fd, e := k.Open(path, vfs.OCreate|vfs.OWrOnly, 0644)
	if e != errno.OK {
		t.Fatalf("Open(%s): %v", path, e)
	}
	if _, e := k.WriteFD(fd, []byte(content)); e != errno.OK {
		t.Fatal(e)
	}
	k.Close(fd)
}

func TestCheckResultsAgreement(t *testing.T) {
	_, c := twoVeriFS(t)
	if d := c.CheckResults("write", []OpResult{{Ret: 5}, {Ret: 5}}); d != nil {
		t.Errorf("agreeing results flagged: %v", d)
	}
	if d := c.CheckResults("write", []OpResult{{Ret: 5}, {Ret: 3}}); d == nil {
		t.Error("return-value mismatch not flagged")
	} else if d.Kind != "return-value" {
		t.Errorf("kind = %q", d.Kind)
	}
	if d := c.CheckResults("open", []OpResult{{Err: errno.ENOENT, Ret: -1}, {Err: errno.EEXIST, Ret: -1}}); d == nil {
		t.Error("errno mismatch not flagged")
	} else if d.Kind != "errno" {
		t.Errorf("kind = %q", d.Kind)
	}
	// Both failing with the same errno: consistent error behavior, OK.
	if d := c.CheckResults("open", []OpResult{{Err: errno.ENOENT, Ret: -1}, {Err: errno.ENOENT, Ret: -1}}); d != nil {
		t.Errorf("consistent errors flagged: %v", d)
	}
	// Return values ignored when both fail.
	if d := c.CheckResults("write", []OpResult{{Err: errno.ENOSPC, Ret: -1}, {Err: errno.ENOSPC, Ret: 0}}); d != nil {
		t.Errorf("error-path ret compared: %v", d)
	}
}

func TestCheckResultsData(t *testing.T) {
	_, c := twoVeriFS(t)
	if d := c.CheckResults("read", []OpResult{{Data: []byte("same")}, {Data: []byte("same")}}); d != nil {
		t.Errorf("equal data flagged: %v", d)
	}
	d := c.CheckResults("read", []OpResult{{Data: []byte("aaaa")}, {Data: []byte("bbbb")}})
	if d == nil || d.Kind != "data" {
		t.Errorf("data mismatch not flagged: %v", d)
	}
}

func TestCheckStatesEqual(t *testing.T) {
	k, c := twoVeriFS(t)
	for _, mnt := range []string{"/a", "/b"} {
		if e := k.Mkdir(mnt+"/dir", 0755); e != errno.OK {
			t.Fatal(e)
		}
		apply(t, k, mnt+"/dir/file", "identical content")
	}
	d, e := c.CheckStates("write_file")
	if e != errno.OK {
		t.Fatal(e)
	}
	if d != nil {
		t.Errorf("identical states flagged: %v", d)
	}
}

func TestCheckStatesDivergence(t *testing.T) {
	k, c := twoVeriFS(t)
	apply(t, k, "/a/file", "AAA")
	apply(t, k, "/b/file", "BBB")
	d, e := c.CheckStates("write_file")
	if e != errno.OK {
		t.Fatal(e)
	}
	if d == nil {
		t.Fatal("divergent states not flagged")
	}
	if d.Kind != "abstract-state" {
		t.Errorf("kind = %q", d.Kind)
	}
	if len(d.Details) == 0 || !strings.Contains(d.Details[0], "verifs1") {
		t.Errorf("details = %v", d.Details)
	}
}

func TestStateHashChangesWithState(t *testing.T) {
	k, c := twoVeriFS(t)
	h1, e := c.StateHash()
	if e != errno.OK {
		t.Fatal(e)
	}
	apply(t, k, "/a/f", "x")
	h2, e := c.StateHash()
	if e != errno.OK {
		t.Fatal(e)
	}
	if h1 == h2 {
		t.Error("state hash blind to mutation")
	}
}

func TestEqualizeFreeSpace(t *testing.T) {
	// ext2 (256 KiB, lost+found, journalless) vs ext4 (256 KiB with a
	// journal region) expose different usable capacities; after
	// equalization their free bytes must agree closely.
	clk := simclock.New()
	k := kernel.New(clk)
	devA := blockdev.NewRAM("ramA", 256*1024, clk)
	if err := extfs.Mkfs(devA, extfs.MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	devB := blockdev.NewRAM("ramB", 256*1024, clk)
	if err := extfs.Mkfs(devB, extfs.MkfsOptions{Journal: true}); err != nil {
		t.Fatal(err)
	}
	mount := func(point string, dev blockdev.Device, name string) {
		if err := k.Mount(point, kernel.FilesystemSpec{
			Type:      name,
			Dev:       dev,
			Mounter:   func() (vfs.FS, error) { return extfs.Mount(dev, clk) },
			Unmounter: func(f vfs.FS) error { return f.(*extfs.FS).Unmount() },
		}, kernel.MountOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	mount("/ext2", devA, "ext2")
	mount("/ext4", devB, "ext4")

	sA, _ := k.Statfs("/ext2")
	sB, _ := k.Statfs("/ext4")
	if sA.FreeBytes() == sB.FreeBytes() {
		t.Fatal("test premise broken: capacities already equal")
	}

	c := New(k, []Target{{Name: "ext2", MountPoint: "/ext2"}, {Name: "ext4", MountPoint: "/ext4"}})
	if e := c.EqualizeFreeSpace(); e != errno.OK {
		t.Fatalf("EqualizeFreeSpace: %v", e)
	}
	sA, _ = k.Statfs("/ext2")
	sB, _ = k.Statfs("/ext4")
	diff := sA.FreeBytes() - sB.FreeBytes()
	if diff < 0 {
		diff = -diff
	}
	// Within a couple of blocks (metadata overhead of the dummy file).
	if diff > 4*1024 {
		t.Errorf("free space still differs by %d bytes (%d vs %d)", diff, sA.FreeBytes(), sB.FreeBytes())
	}
	// The dummy file must not affect abstract-state equality.
	d, e := c.CheckStates("equalize")
	if e != errno.OK {
		t.Fatal(e)
	}
	if d != nil {
		t.Errorf("dummy file visible in abstract state: %v", d)
	}
}

func TestSingleTargetNoStateCheck(t *testing.T) {
	clk := simclock.New()
	k := kernel.New(clk)
	f1 := verifs1.New(clk)
	if err := k.Mount("/a", kernel.FilesystemSpec{
		Type: "verifs1", Mounter: func() (vfs.FS, error) { return f1, nil },
	}, kernel.MountOptions{}); err != nil {
		t.Fatal(err)
	}
	c := New(k, []Target{{Name: "verifs1", MountPoint: "/a"}})
	d, e := c.CheckStates("noop")
	if e != errno.OK || d != nil {
		t.Errorf("single-target check = (%v, %v)", d, e)
	}
}

// threeVeriFS mounts three VeriFS2 instances for majority-vote tests.
func threeVeriFS(t *testing.T) (*kernel.Kernel, *Checker) {
	t.Helper()
	clk := simclock.New()
	k := kernel.New(clk)
	for i := 0; i < 3; i++ {
		f := verifs2.New(clk)
		point := []string{"/a", "/b", "/c"}[i]
		if err := k.Mount(point, kernel.FilesystemSpec{
			Type: "verifs2", Mounter: func() (vfs.FS, error) { return f, nil },
		}, kernel.MountOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	c := New(k, []Target{
		{Name: "fs-a", MountPoint: "/a"},
		{Name: "fs-b", MountPoint: "/b"},
		{Name: "fs-c", MountPoint: "/c"},
	})
	return k, c
}

func TestMajorityResultsAgreement(t *testing.T) {
	_, c := threeVeriFS(t)
	ok := []OpResult{{Ret: 5}, {Ret: 5}, {Ret: 5}}
	if d := c.CheckResultsMajority("write", ok); d != nil {
		t.Errorf("agreeing trio flagged: %v", d)
	}
}

func TestMajorityResultsNamesDeviant(t *testing.T) {
	_, c := threeVeriFS(t)
	d := c.CheckResultsMajority("write", []OpResult{{Ret: 5}, {Ret: 5}, {Ret: 3}})
	if d == nil || d.Kind != "majority-vote" {
		t.Fatalf("deviant not flagged: %v", d)
	}
	if !strings.Contains(strings.Join(d.Details, " "), "fs-c deviates") {
		t.Errorf("fs-c not named: %v", d.Details)
	}
	// Errno deviant.
	d = c.CheckResultsMajority("open", []OpResult{
		{Err: errno.ENOENT, Ret: -1}, {Err: errno.EEXIST, Ret: -1}, {Err: errno.ENOENT, Ret: -1},
	})
	if d == nil || !strings.Contains(strings.Join(d.Details, " "), "fs-b deviates") {
		t.Errorf("errno deviant not named: %v", d)
	}
}

func TestMajorityResultsTie(t *testing.T) {
	_, c := threeVeriFS(t)
	d := c.CheckResultsMajority("write", []OpResult{{Ret: 1}, {Ret: 2}, {Ret: 3}})
	if d == nil {
		t.Fatal("three-way tie not flagged")
	}
	joined := strings.Join(d.Details, " ")
	if !strings.Contains(joined, "no majority") {
		t.Errorf("tie not reported as no-majority: %v", d.Details)
	}
}

func TestMajorityResultsTwoTargetsFallsBack(t *testing.T) {
	_, c := twoVeriFS(t)
	d := c.CheckResultsMajority("open", []OpResult{{Err: errno.ENOENT, Ret: -1}, {Err: errno.OK}})
	if d == nil || d.Kind != "errno" {
		t.Errorf("two-target fallback = %v", d)
	}
}

func TestMajorityStateCheckNamesDeviant(t *testing.T) {
	k, c := threeVeriFS(t)
	// Same file everywhere, different content on fs-b only.
	for _, mnt := range []string{"/a", "/c"} {
		apply(t, k, mnt+"/f", "common")
	}
	apply(t, k, "/b/f", "ODD")
	d, _, e := c.CheckAndHashMajority("write_file")
	if e != errno.OK {
		t.Fatal(e)
	}
	if d == nil {
		t.Fatal("state deviant not flagged")
	}
	joined := strings.Join(d.Details, " ")
	if !strings.Contains(joined, "fs-b deviates from majority") {
		t.Errorf("fs-b not named: %v", d.Details)
	}
}

func TestMajorityStateCheckClean(t *testing.T) {
	k, c := threeVeriFS(t)
	for _, mnt := range []string{"/a", "/b", "/c"} {
		apply(t, k, mnt+"/f", "common")
	}
	d, _, e := c.CheckAndHashMajority("write_file")
	if e != errno.OK {
		t.Fatal(e)
	}
	if d != nil {
		t.Errorf("clean trio flagged: %v", d)
	}
}

func TestDiscrepancyError(t *testing.T) {
	d := &Discrepancy{Kind: "errno", Op: "mkdir", Details: []string{"a vs b"}}
	if !strings.Contains(d.Error(), "mkdir") || !strings.Contains(d.Error(), "errno") {
		t.Errorf("Error() = %q", d.Error())
	}
}
