// Package checker implements MCFS's integrity checks: after every
// operation, all file systems under test must exhibit identical observable
// behavior — matching return values, matching errnos, and matching
// abstract states (§2). On any mismatch the checker produces a
// Discrepancy, which the explorer wraps with the operation trail that led
// to it.
//
// The checker also implements the §3.4 false-positive workarounds:
// directory sizes and entry order are normalized by the abstraction
// function; special files (lost+found, the space-equalizer dummy) live on
// an exception list; and EqualizeFreeSpace pads every file system down to
// the smallest free space among them so ENOSPC fires on all of them at
// the same point.
package checker

import (
	"crypto/md5"
	"fmt"
	"sort"
	"strings"

	"mcfs/internal/abstraction"
	"mcfs/internal/errno"
	"mcfs/internal/kernel"
	"mcfs/internal/obs"
	"mcfs/internal/vfs"
)

// DummyFileName is the space-equalizer file created in each file system's
// root; it is on the abstraction exception list.
const DummyFileName = ".mcfs_space_equalizer"

// Target is one file system under test.
type Target struct {
	// Name labels the target in reports, e.g. "ext4".
	Name string
	// MountPoint is where the file system is mounted.
	MountPoint string
}

// OpResult is the observable outcome of one operation on one target.
type OpResult struct {
	// Ret is the primary return value (bytes written, fd-independent
	// values normalized by the caller; -1 on error).
	Ret int64
	// Err is the errno (OK on success).
	Err errno.Errno
	// Data is the returned payload for read-like operations; nil
	// otherwise.
	Data []byte
}

// Discrepancy describes a behavioral difference between targets.
type Discrepancy struct {
	// Kind is "errno", "return-value", "data", or "abstract-state".
	Kind string
	// Op names the operation that exposed it.
	Op string
	// Details holds one line per observed difference.
	Details []string
}

// Error implements the error interface.
func (d *Discrepancy) Error() string {
	return fmt.Sprintf("discrepancy [%s] after %s: %s", d.Kind, d.Op, strings.Join(d.Details, "; "))
}

// Checker compares the targets mounted in one kernel.
type Checker struct {
	k       *kernel.Kernel
	targets []Target
	opts    abstraction.Options

	obsHub      *obs.Hub
	histCompare *obs.Histogram
}

// SetObs attaches an observability hub: every post-operation
// compare+hash pass records its latency under obs.MetricCompare and
// opens a LayerChecker span (whose kernel-syscall children are the
// abstraction traversal). Nil-safe.
func (c *Checker) SetObs(h *obs.Hub) {
	c.obsHub = h
	c.histCompare = h.Histogram(obs.MetricCompare)
}

// beginCompare opens a comparison span; the returned func completes it.
func (c *Checker) beginCompare(name string) func() {
	if c.obsHub == nil {
		return func() {}
	}
	sp := c.obsHub.StartSpan(obs.LayerChecker, name)
	start := c.obsHub.Now()
	return func() {
		c.histCompare.Observe(c.obsHub.Now() - start)
		sp.End()
	}
}

// New builds a checker over the given targets. The abstraction options
// get the standard exception list plus the space-equalizer dummy.
func New(k *kernel.Kernel, targets []Target) *Checker {
	opts := abstraction.New()
	opts.ExceptionList = append(append([]string{}, opts.ExceptionList...), DummyFileName)
	return &Checker{k: k, targets: targets, opts: opts}
}

// Targets returns the targets under comparison.
func (c *Checker) Targets() []Target { return c.targets }

// AbstractionOptions exposes the options (the explorer hashes with the
// same exception list).
func (c *Checker) AbstractionOptions() abstraction.Options { return c.opts }

// CheckResultsMajority compares per-target outcomes with majority voting
// (the paper's §7 future work): with three or more targets, the majority
// outcome is taken as correct and the deviating targets are named in the
// report. With two targets it behaves like CheckResults. A tie (no strict
// majority) reports all groups.
func (c *Checker) CheckResultsMajority(op string, results []OpResult) *Discrepancy {
	if len(results) != len(c.targets) {
		return &Discrepancy{Kind: "internal", Op: op,
			Details: []string{fmt.Sprintf("got %d results for %d targets", len(results), len(c.targets))}}
	}
	if len(results) < 3 {
		return c.CheckResults(op, results)
	}
	type outcome struct {
		err  errno.Errno
		ret  int64
		data string
	}
	groups := make(map[outcome][]int)
	for i, r := range results {
		o := outcome{err: r.Err}
		if r.Err == errno.OK {
			o.ret = r.Ret
			o.data = string(r.Data)
		}
		groups[o] = append(groups[o], i)
	}
	if len(groups) == 1 {
		return nil
	}
	// Find the strict majority group, if any.
	var majority outcome
	majoritySize := 0
	for o, members := range groups {
		if len(members) > majoritySize {
			majority, majoritySize = o, len(members)
		}
	}
	var details []string
	if majoritySize*2 > len(results) {
		for o, members := range groups {
			if o == majority {
				continue
			}
			for _, i := range members {
				details = append(details, fmt.Sprintf(
					"%s deviates from the majority: %v/ret=%d vs majority %v/ret=%d",
					c.targets[i].Name, o.err, o.ret, majority.err, majority.ret))
			}
		}
	} else {
		for o, members := range groups {
			names := make([]string, len(members))
			for j, i := range members {
				names[j] = c.targets[i].Name
			}
			details = append(details, fmt.Sprintf("no majority: %v returned %v/ret=%d", names, o.err, o.ret))
		}
	}
	sort.Strings(details)
	return &Discrepancy{Kind: "majority-vote", Op: op, Details: details}
}

// CheckResults compares the per-target outcomes of one operation. Return
// values are compared only when every target succeeded (error returns are
// -1 everywhere); errnos are always compared.
func (c *Checker) CheckResults(op string, results []OpResult) *Discrepancy {
	if len(results) != len(c.targets) {
		return &Discrepancy{Kind: "internal", Op: op,
			Details: []string{fmt.Sprintf("got %d results for %d targets", len(results), len(c.targets))}}
	}
	base := results[0]
	for i := 1; i < len(results); i++ {
		r := results[i]
		if r.Err != base.Err {
			return &Discrepancy{
				Kind: "errno",
				Op:   op,
				Details: []string{fmt.Sprintf("%s returned %v but %s returned %v",
					c.targets[0].Name, base.Err, c.targets[i].Name, r.Err)},
			}
		}
		if base.Err == errno.OK && r.Ret != base.Ret {
			return &Discrepancy{
				Kind: "return-value",
				Op:   op,
				Details: []string{fmt.Sprintf("%s returned %d but %s returned %d",
					c.targets[0].Name, base.Ret, c.targets[i].Name, r.Ret)},
			}
		}
		if base.Err == errno.OK && !bytesEqual(base.Data, r.Data) {
			return &Discrepancy{
				Kind: "data",
				Op:   op,
				Details: []string{fmt.Sprintf("%s returned %d bytes %.32q but %s returned %d bytes %.32q",
					c.targets[0].Name, len(base.Data), base.Data, c.targets[i].Name, len(r.Data), r.Data)},
			}
		}
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckStates asserts abstract-state equality across all targets after an
// operation, returning a Discrepancy with a per-file diff on mismatch.
func (c *Checker) CheckStates(op string) (*Discrepancy, errno.Errno) {
	if len(c.targets) < 2 {
		return nil, errno.OK
	}
	baseRecords, e := abstraction.Snapshot(c.k, c.targets[0].MountPoint, c.opts)
	if e != errno.OK {
		return nil, e
	}
	baseHash := abstraction.HashRecords(baseRecords, c.opts)
	for i := 1; i < len(c.targets); i++ {
		records, e := abstraction.Snapshot(c.k, c.targets[i].MountPoint, c.opts)
		if e != errno.OK {
			return nil, e
		}
		if abstraction.HashRecords(records, c.opts) == baseHash {
			continue
		}
		details := abstraction.Diff(baseRecords, records, c.opts)
		if len(details) == 0 {
			details = []string{"states hash differently but record diff is empty (hash ordering?)"}
		}
		for j := range details {
			details[j] = fmt.Sprintf("%s vs %s: %s", c.targets[0].Name, c.targets[i].Name, details[j])
		}
		return &Discrepancy{Kind: "abstract-state", Op: op, Details: details}, errno.OK
	}
	return nil, errno.OK
}

// CheckAndHashMajority is CheckAndHash with majority voting (§7 future
// work): with three or more targets, the per-target abstract hashes are
// grouped and targets outside the majority group are named. The combined
// hash is always computed over all targets in order.
func (c *Checker) CheckAndHashMajority(op string) (*Discrepancy, abstraction.State, errno.Errno) {
	if len(c.targets) < 3 {
		return c.CheckAndHash(op)
	}
	defer c.beginCompare("compare-majority")()
	hasher := md5.New()
	hashes := make([]abstraction.State, len(c.targets))
	records := make([][]abstraction.Record, len(c.targets))
	for i, t := range c.targets {
		recs, e := abstraction.Snapshot(c.k, t.MountPoint, c.opts)
		if e != errno.OK {
			return nil, abstraction.State{}, e
		}
		records[i] = recs
		hashes[i] = abstraction.HashRecords(recs, c.opts)
		hasher.Write(hashes[i][:])
	}
	var combined abstraction.State
	copy(combined[:], hasher.Sum(nil))

	groups := make(map[abstraction.State][]int)
	for i, h := range hashes {
		groups[h] = append(groups[h], i)
	}
	if len(groups) == 1 {
		return nil, combined, errno.OK
	}
	var majority abstraction.State
	majoritySize := 0
	for h, members := range groups {
		if len(members) > majoritySize {
			majority, majoritySize = h, len(members)
		}
	}
	var details []string
	if majoritySize*2 > len(c.targets) {
		ref := records[groups[majority][0]]
		refName := c.targets[groups[majority][0]].Name
		for h, members := range groups {
			if h == majority {
				continue
			}
			for _, i := range members {
				for _, d := range abstraction.Diff(ref, records[i], c.opts) {
					details = append(details, fmt.Sprintf("%s deviates from majority (%s): %s",
						c.targets[i].Name, refName, d))
				}
			}
		}
	} else {
		for _, members := range groups {
			names := make([]string, len(members))
			for j, i := range members {
				names[j] = c.targets[i].Name
			}
			details = append(details, fmt.Sprintf("no majority: %v share a state", names))
		}
	}
	sort.Strings(details)
	return &Discrepancy{Kind: "majority-vote", Op: op, Details: details}, combined, errno.OK
}

// CheckAndHash performs the post-operation state integrity check and
// returns the combined abstract state in one pass (one Algorithm-1
// traversal per target). The explorer calls this after every operation:
// the discrepancy (if any) is the bug report, and the hash keys the
// visited-state table.
func (c *Checker) CheckAndHash(op string) (*Discrepancy, abstraction.State, errno.Errno) {
	defer c.beginCompare("compare")()
	hasher := md5.New()
	var baseRecords []abstraction.Record
	for i, t := range c.targets {
		records, e := abstraction.Snapshot(c.k, t.MountPoint, c.opts)
		if e != errno.OK {
			return nil, abstraction.State{}, e
		}
		h := abstraction.HashRecords(records, c.opts)
		hasher.Write(h[:])
		if i == 0 {
			baseRecords = records
			continue
		}
		if details := abstraction.Diff(baseRecords, records, c.opts); len(details) > 0 {
			for j := range details {
				details[j] = fmt.Sprintf("%s vs %s: %s", c.targets[0].Name, t.Name, details[j])
			}
			return &Discrepancy{Kind: "abstract-state", Op: op, Details: details}, abstraction.State{}, errno.OK
		}
	}
	var combined abstraction.State
	copy(combined[:], hasher.Sum(nil))
	return nil, combined, errno.OK
}

// StateHash returns the combined abstract state across all targets (the
// MD5 of the per-target abstract hashes, in target order); the explorer
// keys its visited table on this.
func (c *Checker) StateHash() (abstraction.State, errno.Errno) {
	hasher := md5.New()
	for _, t := range c.targets {
		h, e := abstraction.Hash(c.k, t.MountPoint, c.opts)
		if e != errno.OK {
			return abstraction.State{}, e
		}
		hasher.Write(h[:])
	}
	var combined abstraction.State
	copy(combined[:], hasher.Sum(nil))
	return combined, errno.OK
}

// MaxEqualizationPad bounds how much padding EqualizeFreeSpace writes to
// any one target. File systems reporting effectively unlimited capacity
// (VeriFS1 deliberately has no data limit, §5) are left alone: the
// workaround exists to reconcile *comparable* block devices, and a
// bounded workload can never fill an unlimited store anyway.
const MaxEqualizationPad = 64 << 20

// EqualizeFreeSpace implements the §3.4 workaround for differing data
// capacities: it queries every target's free space, takes the smallest
// (S_L), and on each target with free space S_n writes a dummy file of
// S_n - S_L zero bytes, so all targets run out of space together.
func (c *Checker) EqualizeFreeSpace() errno.Errno {
	free := make([]int64, len(c.targets))
	minFree := int64(-1)
	for i, t := range c.targets {
		st, e := c.k.Statfs(t.MountPoint)
		if e != errno.OK {
			return e
		}
		free[i] = st.FreeBytes()
		if minFree < 0 || free[i] < minFree {
			minFree = free[i]
		}
	}
	for i, t := range c.targets {
		pad := free[i] - minFree
		if pad <= 0 || pad > MaxEqualizationPad {
			continue
		}
		path := t.MountPoint + "/" + DummyFileName
		fd, e := c.k.Open(path, vfs.OCreate|vfs.OWrOnly, 0600)
		if e != errno.OK {
			return e
		}
		const chunk = 64 * 1024
		zeros := make([]byte, chunk)
		for pad > 0 {
			n := pad
			if n > chunk {
				n = chunk
			}
			wrote, e := c.k.WriteFD(fd, zeros[:n])
			if e == errno.ENOSPC {
				// Metadata overhead ate the difference; close enough.
				break
			}
			if e != errno.OK {
				_ = c.k.Close(fd) // the write's errno is the result; close is cleanup
				return e
			}
			pad -= int64(wrote)
		}
		if e := c.k.Close(fd); e != errno.OK {
			return e
		}
	}
	return errno.OK
}
