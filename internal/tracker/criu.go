package tracker

import (
	"fmt"
	"time"

	"mcfs/internal/obs"
)

// This file implements CRIU-style process snapshotting (§5): MCFS could
// in principle capture a user-space file system's in-memory state by
// checkpointing its process. The paper found that CRIU "refused to
// checkpoint processes that have opened or mapped any character or block
// device (with a few unhelpful exceptions)" — FUSE servers always hold
// /dev/fuse, so this path fails for them, while a plain user-space NFS
// server (Ganesha) checkpoints fine.

// Process is what the CRIU tracker inspects before dumping: a process
// identity plus the special device files it holds open.
type Process interface {
	// ProcessName identifies the process in logs.
	ProcessName() string
	// OpenDeviceFiles lists character/block device files the process has
	// open or mapped.
	OpenDeviceFiles() []string
}

// MemoryImager is the dump/restore half: processes that can serialize
// their full memory image implement it. (Real CRIU reads /proc/<pid>;
// the simulation asks the process itself.)
type MemoryImager interface {
	// SaveImage captures the process's complete memory state.
	SaveImage() (image any, size int64, err error)
	// LoadImage replaces the process's memory state with a saved image.
	LoadImage(image any) error
}

// ErrDeviceFilesOpen is returned when the target holds device files open,
// mirroring CRIU's refusal.
type ErrDeviceFilesOpen struct {
	Process string
	Devices []string
}

func (e *ErrDeviceFilesOpen) Error() string {
	return fmt.Sprintf("criu: refusing to checkpoint %s: device files open: %v", e.Process, e.Devices)
}

// CRIU dump/restore latencies: dominated by walking /proc and writing
// image files; far cheaper than a VM snapshot but far more than an ioctl.
const (
	criuDumpLatency    = 8 * time.Millisecond
	criuRestoreLatency = 6 * time.Millisecond
)

// clockAdvancer matches *simclock.Clock without importing it here.
type clockAdvancer interface {
	Advance(d time.Duration) time.Duration
}

// ProcessSnapshotTracker checkpoints a user-space server process the way
// CRIU would.
type ProcessSnapshotTracker struct {
	proc  Process
	clock clockAdvancer
	obs   obsInstruments

	images map[uint64]savedImage
}

// SetObs implements ObsSetter.
func (t *ProcessSnapshotTracker) SetObs(h *obs.Hub) { t.obs.attach(h, t.Name()) }

type savedImage struct {
	img  any
	size int64
}

// NewProcessSnapshot builds a CRIU-style tracker around proc. The clock
// may be nil (no latency accounting).
func NewProcessSnapshot(proc Process, clock clockAdvancer) *ProcessSnapshotTracker {
	return &ProcessSnapshotTracker{proc: proc, clock: clock, images: make(map[uint64]savedImage)}
}

// Name implements Tracker.
func (t *ProcessSnapshotTracker) Name() string { return "process-snapshot" }

func (t *ProcessSnapshotTracker) charge(d time.Duration) {
	if t.clock != nil {
		t.clock.Advance(d)
	}
}

// Checkpoint implements Tracker. It refuses processes holding device
// files, exactly like CRIU refused the paper's FUSE servers.
func (t *ProcessSnapshotTracker) Checkpoint(key uint64) error {
	defer t.obs.beginCheckpoint().end()
	if devs := t.proc.OpenDeviceFiles(); len(devs) > 0 {
		return &ErrDeviceFilesOpen{Process: t.proc.ProcessName(), Devices: devs}
	}
	mi, ok := t.proc.(MemoryImager)
	if !ok {
		return fmt.Errorf("criu: %s cannot be imaged", t.proc.ProcessName())
	}
	img, size, err := mi.SaveImage()
	if err != nil {
		return err
	}
	t.charge(criuDumpLatency)
	t.images[key] = savedImage{img: img, size: size}
	return nil
}

// Restore implements Tracker.
func (t *ProcessSnapshotTracker) Restore(key uint64) error {
	defer t.obs.beginRestore().end()
	saved, ok := t.images[key]
	if !ok {
		return fmt.Errorf("criu: no image under key %d", key)
	}
	mi, ok := t.proc.(MemoryImager)
	if !ok {
		return fmt.Errorf("criu: %s cannot be imaged", t.proc.ProcessName())
	}
	if err := mi.LoadImage(saved.img); err != nil {
		return err
	}
	t.charge(criuRestoreLatency)
	delete(t.images, key)
	return nil
}

// Discard implements Tracker.
func (t *ProcessSnapshotTracker) Discard(key uint64) { delete(t.images, key) }

// PreOp implements Tracker.
func (t *ProcessSnapshotTracker) PreOp() error { return nil }

// PostOp implements Tracker.
func (t *ProcessSnapshotTracker) PostOp() error { return nil }

// StateBytes implements Tracker: the size of the last captured image.
func (t *ProcessSnapshotTracker) StateBytes() int64 {
	var max int64
	for _, s := range t.images {
		if s.size > max {
			max = s.size
		}
	}
	return max
}
