// Package tracker implements the state capture/restore strategies MCFS
// needs for backtracking search, one per approach the paper discusses:
//
//   - Remount (§3.2/§4): the workaround for in-kernel file systems —
//     snapshot the backing device image (Spin mmaps the device), and
//     restore by unmount + device restore + remount. Optionally remounts
//     around every operation, the paper's default policy whose cost §6
//     measures; disabling it is the E3 ablation.
//   - DiskOnly (§3.2): the broken compromise that tracks only persistent
//     state. Restoring the device under a live mount desynchronizes the
//     kernel's and file system's in-memory state and corrupts the volume;
//     kept so the failure is demonstrable (experiment E8).
//   - Checkpoint (§5): the paper's proposal — the file system itself
//     implements ioctl_CHECKPOINT / ioctl_RESTORE (VeriFS), so capture
//     and restore are cheap in-memory operations with cache invalidation
//     built in.
//   - VMSnapshot (§5): hypervisor-level snapshotting; correct but slow —
//     LightVM-class latencies (30 ms checkpoint, 20 ms restore) cap
//     exploration at 20-30 ops/s.
//   - ProcessSnapshot (§5): CRIU-style user-space process checkpointing;
//     refuses any process holding character or block devices open (so it
//     cannot handle FUSE servers, which hold /dev/fuse), but works for a
//     plain user-space server like NFS-Ganesha.
package tracker

import (
	"fmt"
	"time"

	"mcfs/internal/errno"
	"mcfs/internal/kernel"
	"mcfs/internal/obs"
	"mcfs/internal/vfs"
)

// Tracker saves and restores the complete state of one file system under
// test. Restore consumes the checkpoint (mirroring VeriFS's
// ioctl_RESTORE semantics); the explorer re-checkpoints when it needs to
// return to the same state again.
type Tracker interface {
	// Name identifies the strategy in logs.
	Name() string
	// Checkpoint saves the file system's full state under key.
	Checkpoint(key uint64) error
	// Restore brings back the state saved under key and discards it.
	Restore(key uint64) error
	// Discard drops the checkpoint under key without restoring.
	Discard(key uint64)
	// PreOp runs before each explored operation.
	PreOp() error
	// PostOp runs after each explored operation.
	PostOp() error
	// StateBytes estimates the size of one concrete state, feeding the
	// memory model.
	StateBytes() int64
}

// ObsSetter is implemented by trackers that record checkpoint/restore
// latency histograms and spans into an observability hub; MCFS attaches
// the session hub through it.
type ObsSetter interface {
	SetObs(h *obs.Hub)
}

// obsInstruments holds one tracker's observability handles. The zero
// value (hub nil) is a valid no-op; checkpoint/restore latency is THE
// metric that decides model-checking throughput, so every tracker
// carries one of these.
type obsInstruments struct {
	hub        *obs.Hub
	name       string
	checkpoint *obs.Histogram
	restore    *obs.Histogram
}

func (in *obsInstruments) attach(h *obs.Hub, name string) {
	in.hub = h
	in.name = name
	in.checkpoint = h.Histogram("tracker." + name + ".checkpoint")
	in.restore = h.Histogram("tracker." + name + ".restore")
}

// obsTimer is an in-flight checkpoint/restore measurement.
type obsTimer struct {
	hub   *obs.Hub
	hist  *obs.Histogram
	span  obs.SpanHandle
	start time.Duration
}

func (in *obsInstruments) begin(kind string, hist *obs.Histogram) obsTimer {
	if in.hub == nil {
		return obsTimer{}
	}
	return obsTimer{
		hub:   in.hub,
		hist:  hist,
		span:  in.hub.StartSpan(obs.LayerTracker, kind+":"+in.name),
		start: in.hub.Now(),
	}
}

func (in *obsInstruments) beginCheckpoint() obsTimer { return in.begin("checkpoint", in.checkpoint) }
func (in *obsInstruments) beginRestore() obsTimer    { return in.begin("restore", in.restore) }

func (t obsTimer) end() {
	if t.hub == nil {
		return
	}
	t.hist.Observe(t.hub.Now() - t.start)
	t.span.End()
}

// --- Remount tracker -------------------------------------------------------

// RemountTracker tracks a device-backed file system by snapshotting the
// device image, restoring state via unmount / device-restore / remount.
type RemountTracker struct {
	k           *kernel.Kernel
	point       string
	perOpRemnts bool
	snapshots   map[uint64][]byte
	obs         obsInstruments
}

// SetObs implements ObsSetter.
func (t *RemountTracker) SetObs(h *obs.Hub) { t.obs.attach(h, t.Name()) }

// stateCPUPerKiB is the model checker's own cost of handling a concrete
// state vector (copying the mmap'd image into the state vector, COLLAPSE
// compression, compares). Spin compresses large vectors, so the charge
// is capped at stateCPUCap.
const (
	stateCPUPerKiB = 1200 * time.Nanosecond
	stateCPUCap    = 1 << 20
)

func (t *RemountTracker) chargeStateCPU() {
	n := t.StateBytes()
	if n > stateCPUCap {
		n = stateCPUCap
	}
	t.k.Clock().Advance(time.Duration(n/1024) * stateCPUPerKiB)
}

// NewRemount builds a remount tracker for the mount at point.
// perOpRemounts enables the paper's default unmount/remount around every
// operation.
func NewRemount(k *kernel.Kernel, point string, perOpRemounts bool) *RemountTracker {
	return &RemountTracker{
		k:           k,
		point:       point,
		perOpRemnts: perOpRemounts,
		snapshots:   make(map[uint64][]byte),
	}
}

// Name implements Tracker.
func (t *RemountTracker) Name() string { return "remount" }

func (t *RemountTracker) mount() (*kernel.Mount, error) {
	m, _, e := t.k.MountAt(t.point)
	if e != errno.OK {
		return nil, fmt.Errorf("tracker: %s not mounted", t.point)
	}
	return m, nil
}

// Checkpoint implements Tracker: flush everything to the device (sync
// suffices — data is write-through and sync writes back all dirty
// metadata), then snapshot the image.
func (t *RemountTracker) Checkpoint(key uint64) error {
	defer t.obs.beginCheckpoint().end()
	m, err := t.mount()
	if err != nil {
		return err
	}
	dev := m.Dev()
	if dev == nil {
		return fmt.Errorf("tracker: remount tracking needs a device-backed mount")
	}
	if e := t.k.SyncFS(t.point); e != errno.OK {
		return e
	}
	img, err := dev.Snapshot()
	if err != nil {
		return err
	}
	t.chargeStateCPU()
	t.snapshots[key] = img
	return nil
}

// Restore implements Tracker: unmount (dropping all in-memory state),
// restore the device image, and mount fresh — the only way to guarantee
// no stale state remains in kernel memory (§3.2).
func (t *RemountTracker) Restore(key uint64) error {
	defer t.obs.beginRestore().end()
	img, ok := t.snapshots[key]
	if !ok {
		return fmt.Errorf("tracker: no snapshot under key %d", key)
	}
	m, err := t.mount()
	if err != nil {
		return err
	}
	dev := m.Dev()
	spec, opts := mountSpecOf(m)
	if err := t.k.Unmount(t.point); err != nil {
		return err
	}
	if err := dev.Restore(img); err != nil {
		return err
	}
	t.chargeStateCPU()
	delete(t.snapshots, key)
	return t.k.Mount(t.point, spec, opts)
}

// Discard implements Tracker.
func (t *RemountTracker) Discard(key uint64) { delete(t.snapshots, key) }

// PreOp implements Tracker: remount before the operation when enabled.
func (t *RemountTracker) PreOp() error {
	if !t.perOpRemnts {
		return nil
	}
	return t.k.Remount(t.point)
}

// PostOp implements Tracker: remount after the operation when enabled.
func (t *RemountTracker) PostOp() error {
	if !t.perOpRemnts {
		return nil
	}
	return t.k.Remount(t.point)
}

// StateBytes implements Tracker: a concrete state is the device image.
func (t *RemountTracker) StateBytes() int64 {
	m, err := t.mount()
	if err != nil || m.Dev() == nil {
		return 0
	}
	return m.Dev().Size()
}

// mountSpecOf rebuilds the FilesystemSpec of a live mount so the tracker
// can remount it. The kernel keeps the spec; expose it through a tiny
// accessor pattern to avoid tracker reaching into kernel internals.
func mountSpecOf(m *kernel.Mount) (kernel.FilesystemSpec, kernel.MountOptions) {
	return m.Spec(), m.Options()
}

// --- DiskOnly tracker --------------------------------------------------------

// DiskOnlyTracker tracks only the persistent state: it snapshots and
// restores the device image with NO unmount and NO cache invalidation.
// This is the compromise §3.2 describes — it runs, but restoring desyncs
// the kernel and file system caches from the disk and corrupts the
// volume. It exists to demonstrate that failure (experiment E8); do not
// use it for real checking.
type DiskOnlyTracker struct {
	k         *kernel.Kernel
	point     string
	snapshots map[uint64][]byte
	obs       obsInstruments
}

// SetObs implements ObsSetter.
func (t *DiskOnlyTracker) SetObs(h *obs.Hub) { t.obs.attach(h, t.Name()) }

// NewDiskOnly builds the broken disk-only tracker.
func NewDiskOnly(k *kernel.Kernel, point string) *DiskOnlyTracker {
	return &DiskOnlyTracker{k: k, point: point, snapshots: make(map[uint64][]byte)}
}

// Name implements Tracker.
func (t *DiskOnlyTracker) Name() string { return "disk-only" }

// Checkpoint implements Tracker: fsync, then snapshot the device.
func (t *DiskOnlyTracker) Checkpoint(key uint64) error {
	defer t.obs.beginCheckpoint().end()
	m, _, e := t.k.MountAt(t.point)
	if e != errno.OK {
		return fmt.Errorf("tracker: %s not mounted", t.point)
	}
	if e := t.k.SyncFS(t.point); e != errno.OK {
		return e
	}
	img, err := m.Dev().Snapshot()
	if err != nil {
		return err
	}
	t.snapshots[key] = img
	return nil
}

// Restore implements Tracker: restore the device image underneath the
// live mount. The mounted file system's cached metadata is now stale —
// the §3.2 corruption in action.
func (t *DiskOnlyTracker) Restore(key uint64) error {
	defer t.obs.beginRestore().end()
	img, ok := t.snapshots[key]
	if !ok {
		return fmt.Errorf("tracker: no snapshot under key %d", key)
	}
	m, _, e := t.k.MountAt(t.point)
	if e != errno.OK {
		return fmt.Errorf("tracker: %s not mounted", t.point)
	}
	delete(t.snapshots, key)
	return m.Dev().Restore(img)
}

// Discard implements Tracker.
func (t *DiskOnlyTracker) Discard(key uint64) { delete(t.snapshots, key) }

// PreOp implements Tracker.
func (t *DiskOnlyTracker) PreOp() error { return nil }

// PostOp implements Tracker.
func (t *DiskOnlyTracker) PostOp() error { return nil }

// StateBytes implements Tracker.
func (t *DiskOnlyTracker) StateBytes() int64 {
	m, _, e := t.k.MountAt(t.point)
	if e != errno.OK || m.Dev() == nil {
		return 0
	}
	return m.Dev().Size()
}

// --- Checkpoint tracker -----------------------------------------------------

// CheckpointTracker uses the paper's proposed APIs: the file system
// itself checkpoints and restores its complete state via
// ioctl_CHECKPOINT / ioctl_RESTORE. No unmounts, no device I/O, and the
// file system handles cache invalidation on restore (§5).
type CheckpointTracker struct {
	k     *kernel.Kernel
	point string
	obs   obsInstruments
}

// SetObs implements ObsSetter.
func (t *CheckpointTracker) SetObs(h *obs.Hub) { t.obs.attach(h, t.Name()) }

// NewCheckpoint builds a checkpoint tracker for a file system that
// implements vfs.Checkpointer (VeriFS1/VeriFS2, directly or over FUSE).
func NewCheckpoint(k *kernel.Kernel, point string) *CheckpointTracker {
	return &CheckpointTracker{k: k, point: point}
}

// Name implements Tracker.
func (t *CheckpointTracker) Name() string { return "checkpoint-api" }

// Checkpoint implements Tracker via ioctl_CHECKPOINT.
func (t *CheckpointTracker) Checkpoint(key uint64) error {
	defer t.obs.beginCheckpoint().end()
	if e := t.k.Ioctl(t.point, vfs.IoctlCheckpoint, key); e != errno.OK {
		return e
	}
	return nil
}

// Restore implements Tracker via ioctl_RESTORE (which also discards the
// snapshot and fires kernel cache invalidation).
func (t *CheckpointTracker) Restore(key uint64) error {
	defer t.obs.beginRestore().end()
	if e := t.k.Ioctl(t.point, vfs.IoctlRestore, key); e != errno.OK {
		return e
	}
	return nil
}

// Discard implements Tracker via ioctl_DISCARD: the file system drops
// the snapshot-pool entry without restoring it. Best-effort — a file
// system predating the discard API (ENOTSUP) simply retains the image
// until teardown, which is the old behavior.
func (t *CheckpointTracker) Discard(key uint64) {
	_ = t.k.Ioctl(t.point, vfs.IoctlDiscard, key) // best-effort by contract (see doc)
}

// PreOp implements Tracker: no remounts needed (§5).
func (t *CheckpointTracker) PreOp() error { return nil }

// PostOp implements Tracker.
func (t *CheckpointTracker) PostOp() error { return nil }

// stateByteser is implemented by the VeriFS instances.
type stateByteser interface{ StateBytes() int64 }

// StateBytes implements Tracker.
func (t *CheckpointTracker) StateBytes() int64 {
	m, _, e := t.k.MountAt(t.point)
	if e != errno.OK {
		return 0
	}
	if sb, ok := m.FS().(stateByteser); ok {
		return sb.StateBytes()
	}
	return 0
}

// --- VM snapshot tracker ------------------------------------------------------

// LightVM-class latencies (§5: "30ms to checkpoint a trivial unikernel VM
// and 20ms to restore it").
const (
	VMCheckpointLatency = 30 * time.Millisecond
	VMRestoreLatency    = 20 * time.Millisecond
)

// VMGroup represents one virtual machine containing every file system
// under test: a single VM snapshot captures all of them at once, so the
// hypervisor latency is charged once per checkpoint/restore event no
// matter how many targets share the VM.
type VMGroup struct {
	k                 *kernel.Kernel
	lastCheckpointKey uint64
	lastRestoreKey    uint64
	haveCheckpoint    bool
	haveRestore       bool
}

// NewVMGroup returns a VM shared by all targets of a session.
func NewVMGroup(k *kernel.Kernel) *VMGroup { return &VMGroup{k: k} }

func (g *VMGroup) chargeCheckpoint(key uint64) {
	if g.haveCheckpoint && g.lastCheckpointKey == key {
		return // same VM snapshot covers this target too
	}
	g.haveCheckpoint = true
	g.lastCheckpointKey = key
	g.k.Clock().Advance(VMCheckpointLatency)
}

func (g *VMGroup) chargeRestore(key uint64) {
	if g.haveRestore && g.lastRestoreKey == key {
		return
	}
	g.haveRestore = true
	g.lastRestoreKey = key
	g.k.Clock().Advance(VMRestoreLatency)
}

// VMSnapshotTracker snapshots "the whole VM": functionally it delegates
// to an inner tracker (the VM image contains everything, so correctness
// is free), but each checkpoint/restore event pays hypervisor latency.
// That latency is what limited the paper's exploration to 20-30 ops/s.
type VMSnapshotTracker struct {
	inner Tracker
	group *VMGroup
	obs   obsInstruments
}

// SetObs implements ObsSetter, instrumenting both the VM layer and the
// wrapped tracker (their histogram names differ by tracker name).
func (t *VMSnapshotTracker) SetObs(h *obs.Hub) {
	t.obs.attach(h, t.Name())
	if s, ok := t.inner.(ObsSetter); ok {
		s.SetObs(h)
	}
}

// NewVMSnapshot wraps inner with VM snapshot latencies charged through
// the shared group.
func NewVMSnapshot(group *VMGroup, inner Tracker) *VMSnapshotTracker {
	return &VMSnapshotTracker{inner: inner, group: group}
}

// Name implements Tracker.
func (t *VMSnapshotTracker) Name() string { return "vm-snapshot" }

// Checkpoint implements Tracker, charging the hypervisor checkpoint
// latency (once per event across the VM's targets).
func (t *VMSnapshotTracker) Checkpoint(key uint64) error {
	defer t.obs.beginCheckpoint().end()
	t.group.chargeCheckpoint(key)
	return t.inner.Checkpoint(key)
}

// Restore implements Tracker, charging the hypervisor restore latency.
func (t *VMSnapshotTracker) Restore(key uint64) error {
	defer t.obs.beginRestore().end()
	t.group.chargeRestore(key)
	return t.inner.Restore(key)
}

// Discard implements Tracker.
func (t *VMSnapshotTracker) Discard(key uint64) { t.inner.Discard(key) }

// PreOp implements Tracker (no per-op work: the VM captures everything).
func (t *VMSnapshotTracker) PreOp() error { return nil }

// PostOp implements Tracker.
func (t *VMSnapshotTracker) PostOp() error { return nil }

// StateBytes implements Tracker: a VM image is much larger than the file
// system state alone.
func (t *VMSnapshotTracker) StateBytes() int64 {
	const vmOverhead = 32 << 20 // guest kernel + userspace working set
	return t.inner.StateBytes() + vmOverhead
}
