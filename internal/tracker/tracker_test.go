package tracker

import (
	"errors"
	"testing"

	"mcfs/internal/blockdev"
	"mcfs/internal/errno"
	"mcfs/internal/fs/extfs"
	"mcfs/internal/fs/verifs2"
	"mcfs/internal/fuse"
	"mcfs/internal/kernel"
	"mcfs/internal/nfssim"
	"mcfs/internal/simclock"
	"mcfs/internal/vfs"
)

func extKernel(t *testing.T) (*kernel.Kernel, blockdev.Device) {
	t.Helper()
	clk := simclock.New()
	k := kernel.New(clk)
	dev := blockdev.NewRAM("ram0", 256*1024, clk)
	if err := extfs.Mkfs(dev, extfs.MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Mount("/mnt", kernel.FilesystemSpec{
		Type:      "ext2",
		Dev:       dev,
		Mounter:   func() (vfs.FS, error) { return extfs.Mount(dev, clk) },
		Unmounter: func(f vfs.FS) error { return f.(*extfs.FS).Unmount() },
	}, kernel.MountOptions{}); err != nil {
		t.Fatal(err)
	}
	return k, dev
}

func veriKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	clk := simclock.New()
	k := kernel.New(clk)
	srv := fuse.NewServer(verifs2.New(clk), clk, fuse.ServerOptions{})
	t.Cleanup(srv.Shutdown)
	if err := k.Mount("/mnt", kernel.FilesystemSpec{
		Type:    "verifs2",
		Mounter: func() (vfs.FS, error) { return fuse.NewClient(srv, clk), nil },
	}, kernel.MountOptions{}); err != nil {
		t.Fatal(err)
	}
	return k
}

func writeFile(t *testing.T, k *kernel.Kernel, path, content string) {
	t.Helper()
	fd, e := k.Open(path, vfs.OCreate|vfs.OWrOnly|vfs.OTrunc, 0644)
	if e != errno.OK {
		t.Fatalf("Open(%s): %v", path, e)
	}
	if _, e := k.WriteFD(fd, []byte(content)); e != errno.OK {
		t.Fatal(e)
	}
	k.Close(fd)
}

func readFile(t *testing.T, k *kernel.Kernel, path string) (string, errno.Errno) {
	t.Helper()
	fd, e := k.Open(path, vfs.ORdOnly, 0)
	if e != errno.OK {
		return "", e
	}
	defer k.Close(fd)
	data, e := k.ReadFD(fd, 1<<20)
	return string(data), e
}

func testRoundtrip(t *testing.T, k *kernel.Kernel, tr Tracker) {
	t.Helper()
	writeFile(t, k, "/mnt/file", "state-A")
	if err := tr.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	writeFile(t, k, "/mnt/file", "state-B!")
	if e := k.Mkdir("/mnt/newdir", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if err := tr.Restore(1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got, e := readFile(t, k, "/mnt/file")
	if e != errno.OK || got != "state-A" {
		t.Errorf("after restore: (%q, %v)", got, e)
	}
	if _, e := k.Stat("/mnt/newdir"); e != errno.ENOENT {
		t.Errorf("newdir survived restore: %v", e)
	}
}

func TestRemountTrackerRoundtrip(t *testing.T) {
	k, _ := extKernel(t)
	testRoundtrip(t, k, NewRemount(k, "/mnt", true))
}

func TestRemountTrackerNoPerOpRemounts(t *testing.T) {
	k, _ := extKernel(t)
	tr := NewRemount(k, "/mnt", false)
	if err := tr.PreOp(); err != nil {
		t.Fatal(err)
	}
	testRoundtrip(t, k, tr)
}

func TestCheckpointTrackerRoundtrip(t *testing.T) {
	k := veriKernel(t)
	testRoundtrip(t, k, NewCheckpoint(k, "/mnt"))
}

func TestVMSnapshotTrackerRoundtripAndLatency(t *testing.T) {
	k := veriKernel(t)
	inner := NewCheckpoint(k, "/mnt")
	tr := NewVMSnapshot(NewVMGroup(k), inner)
	before := k.Clock().Now()
	testRoundtrip(t, k, tr)
	elapsed := k.Clock().Now() - before
	if elapsed < VMCheckpointLatency+VMRestoreLatency {
		t.Errorf("VM snapshot pair charged %v, want at least %v",
			elapsed, VMCheckpointLatency+VMRestoreLatency)
	}
	if tr.StateBytes() <= inner.StateBytes() {
		t.Error("VM image not larger than bare FS state")
	}
}

func TestRemountRestoreUnknownKey(t *testing.T) {
	k, _ := extKernel(t)
	tr := NewRemount(k, "/mnt", false)
	if err := tr.Restore(42); err == nil {
		t.Error("Restore(unknown) succeeded")
	}
}

func TestRemountStateBytesIsDeviceSize(t *testing.T) {
	k, dev := extKernel(t)
	tr := NewRemount(k, "/mnt", false)
	if got := tr.StateBytes(); got != dev.Size() {
		t.Errorf("StateBytes = %d, want %d", got, dev.Size())
	}
}

func TestDiskOnlyTrackerCorruptsVolume(t *testing.T) {
	// Experiment E8 (§3.2): track only the persistent state, restore it
	// under the live mount, keep operating — the volume ends up corrupt
	// ("directory entries with corrupted or zeroed inodes").
	k, dev := extKernel(t)
	tr := NewDiskOnly(k, "/mnt")

	writeFile(t, k, "/mnt/base", "base")
	if err := tr.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// Advance the state: new files allocate inodes and blocks, flushed to
	// disk so the checkpoint and live state genuinely diverge on disk.
	writeFile(t, k, "/mnt/after1", "1111")
	writeFile(t, k, "/mnt/after2", "2222")
	if e := k.SyncFS("/mnt"); e != errno.OK {
		t.Fatal(e)
	}
	// Roll the DISK back while the mount's in-memory metadata still
	// describes the newer world.
	if err := tr.Restore(1); err != nil {
		t.Fatal(err)
	}
	// Keep using the stale mount: these operations write metadata derived
	// from the in-memory caches over the restored image.
	writeFile(t, k, "/mnt/post", "pppp")
	if e := k.SyncFS("/mnt"); e != errno.OK {
		t.Fatal(e)
	}
	// Unmount and fsck the device: corruption expected.
	if err := k.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	problems, err := extfs.Fsck(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Error("disk-only tracking produced a clean volume; expected corruption (§3.2)")
	} else {
		t.Logf("fsck found (expected): %v", problems[0])
	}
}

func TestCRIURefusesFUSEServer(t *testing.T) {
	// Experiment E7 (§5): CRIU refuses processes holding device files;
	// FUSE servers hold /dev/fuse.
	clk := simclock.New()
	srv := fuse.NewServer(verifs2.New(clk), clk, fuse.ServerOptions{})
	defer srv.Shutdown()
	tr := NewProcessSnapshot(srv, clk)
	err := tr.Checkpoint(1)
	var devErr *ErrDeviceFilesOpen
	if !errors.As(err, &devErr) {
		t.Fatalf("Checkpoint(fuse server) = %v, want ErrDeviceFilesOpen", err)
	}
	if len(devErr.Devices) != 1 || devErr.Devices[0] != fuse.DeviceFile {
		t.Errorf("devices = %v", devErr.Devices)
	}
}

func TestCRIUSnapshotsNFSServer(t *testing.T) {
	// ...but the user-space NFS server checkpoints fine (§5).
	clk := simclock.New()
	srv := nfssim.New(clk)
	tr := NewProcessSnapshot(srv, clk)

	fh, e := srv.Create(srv.RootFH(), "file", 0644)
	if e != errno.OK {
		t.Fatal(e)
	}
	if _, e := srv.Write(fh, 0, []byte("nfs state A")); e != errno.OK {
		t.Fatal(e)
	}
	if err := tr.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint(nfs) = %v", err)
	}
	if tr.StateBytes() == 0 {
		t.Error("StateBytes = 0 after checkpoint")
	}
	if _, e := srv.Write(fh, 0, []byte("nfs state B")); e != errno.OK {
		t.Fatal(e)
	}
	if _, e := srv.Mkdir(srv.RootFH(), "newdir", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if err := tr.Restore(1); err != nil {
		t.Fatalf("Restore(nfs) = %v", err)
	}
	data, e := srv.Read(fh, 0, 100)
	if e != errno.OK || string(data) != "nfs state A" {
		t.Errorf("after restore: (%q, %v)", data, e)
	}
	if _, e := srv.Lookup(srv.RootFH(), "newdir"); e != errno.ENOENT {
		t.Errorf("newdir survived restore: %v", e)
	}
}

func TestCheckpointTrackerOnNonCheckpointer(t *testing.T) {
	k, _ := extKernel(t)
	tr := NewCheckpoint(k, "/mnt")
	if err := tr.Checkpoint(1); err == nil {
		t.Error("checkpoint API on ext2 succeeded")
	}
}

func TestTrackerNames(t *testing.T) {
	k, _ := extKernel(t)
	clk := simclock.New()
	names := map[string]Tracker{
		"remount":          NewRemount(k, "/mnt", true),
		"disk-only":        NewDiskOnly(k, "/mnt"),
		"checkpoint-api":   NewCheckpoint(k, "/mnt"),
		"vm-snapshot":      NewVMSnapshot(NewVMGroup(k), NewCheckpoint(k, "/mnt")),
		"process-snapshot": NewProcessSnapshot(nfssim.New(clk), clk),
	}
	for want, tr := range names {
		if tr.Name() != want {
			t.Errorf("Name() = %q, want %q", tr.Name(), want)
		}
	}
}
