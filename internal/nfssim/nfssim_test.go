package nfssim

import (
	"testing"

	"mcfs/internal/errno"
	"mcfs/internal/simclock"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	return New(simclock.New())
}

func TestCreateLookupReadWrite(t *testing.T) {
	s := newServer(t)
	fh, e := s.Create(s.RootFH(), "file", 0644)
	if e != errno.OK {
		t.Fatalf("Create: %v", e)
	}
	got, e := s.Lookup(s.RootFH(), "file")
	if e != errno.OK || got != fh {
		t.Errorf("Lookup = (%v, %v)", got, e)
	}
	if _, e := s.Write(fh, 0, []byte("data over the wire")); e != errno.OK {
		t.Fatal(e)
	}
	data, e := s.Read(fh, 5, 4)
	if e != errno.OK || string(data) != "over" {
		t.Errorf("Read = (%q, %v)", data, e)
	}
	a, e := s.Getattr(fh)
	if e != errno.OK || a.Size != 18 || a.IsDir {
		t.Errorf("Getattr = (%+v, %v)", a, e)
	}
}

func TestMkdirReaddirSorted(t *testing.T) {
	s := newServer(t)
	if _, e := s.Mkdir(s.RootFH(), "zz", 0755); e != errno.OK {
		t.Fatal(e)
	}
	if _, e := s.Create(s.RootFH(), "aa", 0644); e != errno.OK {
		t.Fatal(e)
	}
	ents, e := s.Readdir(s.RootFH())
	if e != errno.OK || len(ents) != 2 {
		t.Fatalf("Readdir = (%v, %v)", ents, e)
	}
	if ents[0].Name != "aa" || ents[1].Name != "zz" {
		t.Errorf("order = %v", ents)
	}
}

func TestRemoveAndRmdir(t *testing.T) {
	s := newServer(t)
	d, _ := s.Mkdir(s.RootFH(), "dir", 0755)
	if _, e := s.Create(d, "f", 0644); e != errno.OK {
		t.Fatal(e)
	}
	if e := s.Rmdir(s.RootFH(), "dir"); e != errno.ENOTEMPTY {
		t.Errorf("rmdir non-empty = %v", e)
	}
	if e := s.Remove(d, "f"); e != errno.OK {
		t.Fatal(e)
	}
	if e := s.Rmdir(s.RootFH(), "dir"); e != errno.OK {
		t.Errorf("rmdir = %v", e)
	}
	if e := s.Remove(s.RootFH(), "ghost"); e != errno.ENOENT {
		t.Errorf("remove missing = %v", e)
	}
	// Remove on a dir is EISDIR.
	d2, _ := s.Mkdir(s.RootFH(), "d2", 0755)
	_ = d2
	if e := s.Remove(s.RootFH(), "d2"); e != errno.EISDIR {
		t.Errorf("remove dir = %v", e)
	}
}

func TestStaleHandle(t *testing.T) {
	s := newServer(t)
	fh, _ := s.Create(s.RootFH(), "f", 0644)
	if e := s.Remove(s.RootFH(), "f"); e != errno.OK {
		t.Fatal(e)
	}
	if _, e := s.Getattr(fh); e != errno.ENOENT {
		t.Errorf("stale handle getattr = %v", e)
	}
	if _, e := s.Read(fh, 0, 1); e != errno.ENOENT {
		t.Errorf("stale handle read = %v", e)
	}
}

func TestSetattrTruncate(t *testing.T) {
	s := newServer(t)
	fh, _ := s.Create(s.RootFH(), "f", 0644)
	if _, e := s.Write(fh, 0, []byte("0123456789")); e != errno.OK {
		t.Fatal(e)
	}
	size := int64(4)
	if e := s.Setattr(fh, nil, nil, nil, &size); e != errno.OK {
		t.Fatal(e)
	}
	data, _ := s.Read(fh, 0, 100)
	if string(data) != "0123" {
		t.Errorf("after truncate = %q", data)
	}
	size = 8
	if e := s.Setattr(fh, nil, nil, nil, &size); e != errno.OK {
		t.Fatal(e)
	}
	data, _ = s.Read(fh, 0, 100)
	if len(data) != 8 || data[7] != 0 {
		t.Errorf("grow-truncate = %v", data)
	}
}

func TestSaveLoadImageDeepCopy(t *testing.T) {
	s := newServer(t)
	fh, _ := s.Create(s.RootFH(), "f", 0644)
	if _, e := s.Write(fh, 0, []byte("original")); e != errno.OK {
		t.Fatal(e)
	}
	img, size, err := s.SaveImage()
	if err != nil || size == 0 {
		t.Fatalf("SaveImage = (%v, %d)", err, size)
	}
	// Mutate, then mutate more to check the image is isolated.
	if _, e := s.Write(fh, 0, []byte("MUTATED!")); e != errno.OK {
		t.Fatal(e)
	}
	if err := s.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	data, _ := s.Read(fh, 0, 100)
	if string(data) != "original" {
		t.Errorf("after LoadImage = %q", data)
	}
	// Loading twice must work (image not consumed by LoadImage).
	if _, e := s.Write(fh, 0, []byte("again!!!")); e != errno.OK {
		t.Fatal(e)
	}
	if err := s.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Read(fh, 0, 100)
	if string(data) != "original" {
		t.Errorf("after second LoadImage = %q", data)
	}
}

func TestProcessInterface(t *testing.T) {
	s := newServer(t)
	if s.ProcessName() != "nfs-ganesha" {
		t.Errorf("ProcessName = %q", s.ProcessName())
	}
	if len(s.OpenDeviceFiles()) != 0 {
		t.Errorf("OpenDeviceFiles = %v", s.OpenDeviceFiles())
	}
}

func TestRPCChargesClock(t *testing.T) {
	clk := simclock.New()
	s := New(clk)
	before := clk.Now()
	s.Getattr(s.RootFH())
	if clk.Now() == before {
		t.Error("RPC charged no time")
	}
}
