// Package nfssim implements a small user-space NFS server, the stand-in
// for NFS-Ganesha in the paper's CRIU discussion (§5): unlike a FUSE
// server, it holds no character or block device open — it speaks to its
// clients over a network socket — so CRIU-style process snapshotting
// (internal/tracker.ProcessSnapshotTracker) can checkpoint it.
//
// The server keeps an in-memory export tree and serves NFSv3-flavored
// procedures (LOOKUP, GETATTR, SETATTR, CREATE, MKDIR, REMOVE, RMDIR,
// READ, WRITE, READDIR) against opaque file handles. Each procedure
// charges a per-RPC latency to the virtual clock.
package nfssim

import (
	"sort"
	"time"

	"mcfs/internal/errno"
	"mcfs/internal/simclock"
)

// rpcCost is the virtual time one NFS RPC costs (loopback transport).
const rpcCost = 12 * time.Microsecond

// FH is an opaque NFS file handle.
type FH uint64

// Attr is the NFS attribute record (a trimmed fattr3).
type Attr struct {
	IsDir bool
	Mode  uint32
	Size  int64
	UID   uint32
	GID   uint32
	Nlink uint32
}

// Entry is one READDIR entry.
type Entry struct {
	Name string
	FH   FH
}

type node struct {
	attr     Attr
	content  []byte
	children map[string]FH
}

func (n *node) clone() *node {
	c := &node{attr: n.attr}
	if n.content != nil {
		c.content = append([]byte(nil), n.content...)
	}
	if n.children != nil {
		c.children = make(map[string]FH, len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return c
}

// Server is the user-space NFS server "process".
type Server struct {
	clock  *simclock.Clock
	nodes  map[FH]*node
	nextFH FH
}

// New starts a server exporting an empty root directory.
func New(clock *simclock.Clock) *Server {
	s := &Server{clock: clock, nodes: make(map[FH]*node), nextFH: 2}
	s.nodes[1] = &node{
		attr:     Attr{IsDir: true, Mode: 0755, Nlink: 2},
		children: make(map[string]FH),
	}
	return s
}

func (s *Server) charge() {
	if s.clock != nil {
		s.clock.Advance(rpcCost)
	}
}

// RootFH returns the export's root file handle.
func (s *Server) RootFH() FH { return 1 }

// ProcessName implements tracker.Process.
func (s *Server) ProcessName() string { return "nfs-ganesha" }

// OpenDeviceFiles implements tracker.Process: the server talks to a
// network socket only — no character or block devices.
func (s *Server) OpenDeviceFiles() []string { return nil }

// memImage is the process memory image SaveImage produces.
type memImage struct {
	nodes  map[FH]*node
	nextFH FH
}

// SaveImage implements tracker.MemoryImager: a deep copy of the whole
// process heap (the export tree).
func (s *Server) SaveImage() (any, int64, error) {
	img := make(map[FH]*node, len(s.nodes))
	size := int64(0)
	for fh, n := range s.nodes {
		img[fh] = n.clone()
		size += 64 + int64(len(n.content))
		for name := range n.children {
			size += int64(len(name)) + 16
		}
	}
	return memImage{nodes: img, nextFH: s.nextFH}, size, nil
}

// LoadImage implements tracker.MemoryImager.
func (s *Server) LoadImage(imgAny any) error {
	img, ok := imgAny.(memImage)
	if !ok {
		return errno.EINVAL
	}
	s.nodes = make(map[FH]*node, len(img.nodes))
	for fh, n := range img.nodes {
		s.nodes[fh] = n.clone()
	}
	s.nextFH = img.nextFH
	return nil
}

func (s *Server) dir(fh FH) (*node, errno.Errno) {
	n := s.nodes[fh]
	if n == nil {
		return nil, errno.ENOENT // ESTALE in real NFS; ENOENT is our analogue
	}
	if !n.attr.IsDir {
		return nil, errno.ENOTDIR
	}
	return n, errno.OK
}

// Lookup resolves name in the directory dirFH.
func (s *Server) Lookup(dirFH FH, name string) (FH, errno.Errno) {
	s.charge()
	d, e := s.dir(dirFH)
	if e != errno.OK {
		return 0, e
	}
	fh, ok := d.children[name]
	if !ok {
		return 0, errno.ENOENT
	}
	return fh, errno.OK
}

// Getattr returns the attributes of fh.
func (s *Server) Getattr(fh FH) (Attr, errno.Errno) {
	s.charge()
	n := s.nodes[fh]
	if n == nil {
		return Attr{}, errno.ENOENT
	}
	a := n.attr
	a.Size = int64(len(n.content))
	if n.attr.IsDir {
		a.Size = int64(len(n.children)) * 32
	}
	return a, errno.OK
}

// Setattr updates mode/uid/gid and (for files) truncates to size when
// size >= 0.
func (s *Server) Setattr(fh FH, mode *uint32, uid, gid *uint32, size *int64) errno.Errno {
	s.charge()
	n := s.nodes[fh]
	if n == nil {
		return errno.ENOENT
	}
	if mode != nil {
		n.attr.Mode = *mode & 0777
	}
	if uid != nil {
		n.attr.UID = *uid
	}
	if gid != nil {
		n.attr.GID = *gid
	}
	if size != nil {
		if n.attr.IsDir {
			return errno.EISDIR
		}
		if *size < 0 {
			return errno.EINVAL
		}
		if int64(len(n.content)) > *size {
			n.content = n.content[:*size]
		} else {
			nc := make([]byte, *size)
			copy(nc, n.content)
			n.content = nc
		}
	}
	return errno.OK
}

func (s *Server) makeNode(dirFH FH, name string, isDir bool, mode uint32) (FH, errno.Errno) {
	d, e := s.dir(dirFH)
	if e != errno.OK {
		return 0, e
	}
	if name == "" || name == "." || name == ".." {
		return 0, errno.EINVAL
	}
	if _, ok := d.children[name]; ok {
		return 0, errno.EEXIST
	}
	fh := s.nextFH
	s.nextFH++
	n := &node{attr: Attr{IsDir: isDir, Mode: mode & 0777, Nlink: 1}}
	if isDir {
		n.attr.Nlink = 2
		n.children = make(map[string]FH)
		d.attr.Nlink++
	}
	s.nodes[fh] = n
	d.children[name] = fh
	return fh, errno.OK
}

// Create makes a regular file.
func (s *Server) Create(dirFH FH, name string, mode uint32) (FH, errno.Errno) {
	s.charge()
	return s.makeNode(dirFH, name, false, mode)
}

// Mkdir makes a directory.
func (s *Server) Mkdir(dirFH FH, name string, mode uint32) (FH, errno.Errno) {
	s.charge()
	return s.makeNode(dirFH, name, true, mode)
}

// Remove deletes a file.
func (s *Server) Remove(dirFH FH, name string) errno.Errno {
	s.charge()
	d, e := s.dir(dirFH)
	if e != errno.OK {
		return e
	}
	fh, ok := d.children[name]
	if !ok {
		return errno.ENOENT
	}
	n := s.nodes[fh]
	if n != nil && n.attr.IsDir {
		return errno.EISDIR
	}
	delete(d.children, name)
	delete(s.nodes, fh)
	return errno.OK
}

// Rmdir deletes an empty directory.
func (s *Server) Rmdir(dirFH FH, name string) errno.Errno {
	s.charge()
	d, e := s.dir(dirFH)
	if e != errno.OK {
		return e
	}
	fh, ok := d.children[name]
	if !ok {
		return errno.ENOENT
	}
	n := s.nodes[fh]
	if n == nil || !n.attr.IsDir {
		return errno.ENOTDIR
	}
	if len(n.children) > 0 {
		return errno.ENOTEMPTY
	}
	delete(d.children, name)
	delete(s.nodes, fh)
	d.attr.Nlink--
	return errno.OK
}

// Read returns up to n bytes at off.
func (s *Server) Read(fh FH, off int64, n int) ([]byte, errno.Errno) {
	s.charge()
	nd := s.nodes[fh]
	if nd == nil {
		return nil, errno.ENOENT
	}
	if nd.attr.IsDir {
		return nil, errno.EISDIR
	}
	if off < 0 || n < 0 {
		return nil, errno.EINVAL
	}
	if off >= int64(len(nd.content)) {
		return nil, errno.OK
	}
	end := off + int64(n)
	if end > int64(len(nd.content)) {
		end = int64(len(nd.content))
	}
	out := make([]byte, end-off)
	copy(out, nd.content[off:end])
	return out, errno.OK
}

// Write stores data at off, growing the file (holes read as zeros).
func (s *Server) Write(fh FH, off int64, data []byte) (int, errno.Errno) {
	s.charge()
	nd := s.nodes[fh]
	if nd == nil {
		return 0, errno.ENOENT
	}
	if nd.attr.IsDir {
		return 0, errno.EISDIR
	}
	if off < 0 {
		return 0, errno.EINVAL
	}
	end := off + int64(len(data))
	if end > int64(len(nd.content)) {
		nc := make([]byte, end)
		copy(nc, nd.content)
		nd.content = nc
	}
	copy(nd.content[off:end], data)
	return len(data), errno.OK
}

// Readdir lists a directory sorted by name (NFS cookies elided).
func (s *Server) Readdir(dirFH FH) ([]Entry, errno.Errno) {
	s.charge()
	d, e := s.dir(dirFH)
	if e != errno.OK {
		return nil, e
	}
	out := make([]Entry, 0, len(d.children))
	for name, fh := range d.children {
		out = append(out, Entry{Name: name, FH: fh})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, errno.OK
}

// NodeCount reports the number of live nodes (tests).
func (s *Server) NodeCount() int { return len(s.nodes) }
