package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// atomicplain proves the sync/atomic exclusivity invariant: a field
// whose address is ever passed to sync/atomic (atomic.AddInt64(&c.n,
// ...), atomic.LoadUint64(&t.bits[w])) must never be accessed plainly
// anywhere else in the module — mixed atomic/plain access is a data
// race the race detector only catches if a test happens to interleave
// it; this analyzer catches it on every build.
//
// Two shapes are distinguished. A *field-atomic* field (&c.n) admits
// no plain access at all. An *element-atomic* slice field
// (&t.bits[w]) races per element: plain indexing or ranging is
// flagged, while len()/cap() and whole-slice assignment (the
// make-then-publish constructor idiom) are allowed — slice headers are
// written before the table is shared and never mutated after.
//
// Fields of the wrapper types (atomic.Int64 &c.) enforce themselves in
// the type system and are not indexed here.

// NewAtomicPlain returns the atomicplain analyzer.
func NewAtomicPlain() *Analyzer {
	return &Analyzer{
		Name:        "atomicplain",
		Doc:         "a field accessed via sync/atomic must not also be accessed plainly",
		NeedsModule: true,
		Run:         runAtomicPlain,
	}
}

// atomicField is one struct field the module accesses atomically.
type atomicField struct {
	v        *types.Var
	elemOnly bool      // every atomic use is &field[index]
	witness  token.Pos // earliest atomic call site
}

// atomicIndex is the module-wide field index plus the selector
// positions that constitute the atomic accesses themselves.
type atomicIndex struct {
	fields  map[*types.Var]*atomicField
	atomPos map[token.Pos]bool // positions of the &-arg selectors
}

func runAtomicPlain(pass *Pass) {
	m := pass.Module
	if m == nil {
		return
	}
	idx := m.atomicFields()
	for _, file := range pass.Files {
		checkPlainAccesses(pass, idx, file)
	}
}

// atomicFields builds (and caches) the module-wide index of fields
// whose address reaches sync/atomic.
func (m *Module) atomicFields() *atomicIndex {
	if m.atomResult != nil {
		return m.atomResult
	}
	idx := &atomicIndex{
		fields:  map[*types.Var]*atomicField{},
		atomPos: map[token.Pos]bool{},
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isAtomicCall(pkg, call) {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				target := ast.Unparen(un.X)
				var sel *ast.SelectorExpr
				elem := false
				switch t := target.(type) {
				case *ast.SelectorExpr:
					sel = t
				case *ast.IndexExpr:
					if s, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok {
						sel = s
						elem = true
					}
				}
				if sel == nil {
					return true
				}
				fv, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !fv.IsField() {
					return true
				}
				af := idx.fields[fv]
				if af == nil {
					af = &atomicField{v: fv, elemOnly: true, witness: call.Pos()}
					idx.fields[fv] = af
				}
				if !elem {
					af.elemOnly = false
				}
				if call.Pos() < af.witness {
					af.witness = call.Pos()
				}
				idx.atomPos[sel.Sel.Pos()] = true
				return true
			})
		}
	}
	m.atomResult = idx
	return idx
}

// isAtomicCall reports whether the call targets package sync/atomic.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// checkPlainAccesses walks one file with an explicit parent stack and
// flags plain uses of indexed fields.
func checkPlainAccesses(pass *Pass, idx *atomicIndex, file *ast.File) {
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fv, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		af := idx.fields[fv]
		if af == nil {
			return true
		}
		if idx.atomPos[sel.Sel.Pos()] {
			return true // this IS the atomic access
		}
		parent := parentOf(stack, sel)
		if af.elemOnly && elemPlainAllowed(sel, parent) {
			return true
		}
		w := pass.Fset.Position(af.witness)
		kind := "accessed"
		if af.elemOnly {
			kind = "indexed"
		}
		findings = append(findings, finding{
			pos: sel.Sel.Pos(),
			msg: "field " + fv.Name() + " is " + kind + " atomically at " +
				shortPos(w) + "; this plain access races with it",
		})
		return true
	})
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// parentOf returns the innermost stack node strictly above sel,
// unwrapping parens.
func parentOf(stack []ast.Node, sel *ast.SelectorExpr) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != sel {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			if _, isParen := stack[j].(*ast.ParenExpr); isParen {
				continue
			}
			return stack[j]
		}
		return nil
	}
	return nil
}

// elemPlainAllowed reports whether a plain mention of an element-atomic
// slice field is one of the safe header-only shapes: len()/cap() and
// whole-slice assignment (constructor make-then-publish).
func elemPlainAllowed(sel *ast.SelectorExpr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			for _, a := range p.Args {
				if ast.Unparen(a) == sel {
					return true
				}
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				return true
			}
		}
	}
	return false
}

func shortPos(p token.Position) string {
	name := p.Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			name = name[i+1:]
			break
		}
	}
	return name + ":" + strconv.Itoa(p.Line)
}
