// Package lint is MCFS's domain-specific static-analysis framework: a
// stdlib-only (go/ast + go/types) analogue of golang.org/x/tools/go/analysis,
// purpose-built to prove the invariants the model checker depends on.
//
// The checker's soundness rests on two properties that ordinary Go tooling
// cannot see: every checkpoint image must be paired with a restore-or-discard
// (or backtracking leaks state, the bug class fixed in the swarm PR), and no
// nondeterminism — map iteration order, wall-clock time, unseeded randomness —
// may leak into state hashing or the flight-recorder journal (the bug class
// behind the extfs journal-replay flake). Both invariants have regressed in
// this repo's history; the analyzers in this package check them on every
// build, SquirrelFS-style: correctness rules enforced before any run.
//
// The suite (see Analyzers):
//
//   - checkpointleak: a checkpoint key must reach Restore or Discard on
//     every return path of the function that created it.
//   - maporder: iteration over a map must not feed order-sensitive sinks
//     (hashes, the journal, serialization, device writes, unsorted appends).
//   - walltime: time.Now / time.Since / math/rand are forbidden outside
//     the simulation clock — wall time breaks replay determinism.
//   - errnodrop: error and Errno results of kernel/vfs/fs operations must
//     not be discarded.
//   - nilobs: obs hub/reporter/journal methods must keep their documented
//     nil-receiver safety.
//
// Diagnostics can be suppressed with a justified comment on the flagged
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore without one is inert.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col display and
// machine consumption (-json).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer proves.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ignoreKey addresses one (file, line) pair in the suppression index.
type ignoreKey struct {
	file string
	line int
}

// ignoreIndex maps source lines to the analyzer names suppressed there.
// The special name "all" suppresses every analyzer on that line.
type ignoreIndex map[ignoreKey]map[string]bool

// buildIgnoreIndex scans a package's comments for lint:ignore directives.
// A directive covers its own line (trailing comment) and the line directly
// below it (comment above the flagged statement). Directives without a
// reason are ignored — suppressions must be justified.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, idx ignoreIndex) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					// No analyzer name or no reason: inert.
					continue
				}
				name := fields[0]
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{file: pos.Filename, line: line}
					if idx[key] == nil {
						idx[key] = map[string]bool{}
					}
					idx[key][name] = true
				}
			}
		}
	}
}

func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	names := idx[ignoreKey{file: d.File, line: d.Line}]
	return names[d.Analyzer] || names["all"]
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := ignoreIndex{}
	for _, pkg := range pkgs {
		buildIgnoreIndex(pkg.Fset, pkg.Files, ignores)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				sink:     &diags,
			}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	seen := map[Diagnostic]bool{}
	for _, d := range diags {
		if ignores.suppressed(d) || seen[d] {
			continue
		}
		seen[d] = true
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// WriteJSON renders diagnostics as an indented JSON array (empty array,
// not null, when there are none) for machine consumption.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// Analyzers returns the production suite configured for this module's
// package layout. Golden tests construct analyzers with fixture-specific
// configurations instead.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewCheckpointLeak(),
		NewMapOrder(),
		NewWalltime(WalltimeConfig{
			AllowPkgs: []string{"mcfs/internal/simclock"},
		}),
		NewErrnoDrop(ErrnoDropConfig{
			ErrorCallPkgPrefixes: []string{"mcfs/internal/", "mcfs"},
		}),
		NewNilObs(NilObsConfig{
			Targets: map[string][]string{
				"mcfs/internal/obs":         {"Hub", "Counter", "Gauge", "Histogram", "Reporter"},
				"mcfs/internal/obs/journal": {"Writer", "Recorder"},
				"mcfs/internal/obs/perf":    {"Profiler"},
				"mcfs/internal/obs/stream":  {"Bus", "Subscriber"},
				// The engine calls the governor unconditionally on its
				// visit hot path; a nil governor must stay inert.
				"mcfs/internal/mc/visited": {"Governor"},
			},
		}),
	}
}
