// Package lint is MCFS's domain-specific static-analysis framework: a
// stdlib-only (go/ast + go/types) analogue of golang.org/x/tools/go/analysis,
// purpose-built to prove the invariants the model checker depends on.
//
// The checker's soundness rests on two properties that ordinary Go tooling
// cannot see: every checkpoint image must be paired with a restore-or-discard
// (or backtracking leaks state, the bug class fixed in the swarm PR), and no
// nondeterminism — map iteration order, wall-clock time, unseeded randomness —
// may leak into state hashing or the flight-recorder journal (the bug class
// behind the extfs journal-replay flake). Both invariants have regressed in
// this repo's history; the analyzers in this package check them on every
// build, SquirrelFS-style: correctness rules enforced before any run.
//
// The suite (see Analyzers):
//
//   - checkpointleak: a checkpoint key must reach Restore or Discard on
//     every return path of the function that created it.
//   - maporder: iteration over a map must not feed order-sensitive sinks
//     (hashes, the journal, serialization, device writes, unsorted appends).
//   - walltime: time.Now / time.Since / math/rand are forbidden outside
//     the simulation clock — wall time breaks replay determinism.
//   - errnodrop: error and Errno results of kernel/vfs/fs operations must
//     not be discarded.
//   - nilobs: obs hub/reporter/journal methods must keep their documented
//     nil-receiver safety.
//   - lockorder: the global lock-acquisition order graph must be acyclic
//     (a cycle is a potential deadlock), built flow-sensitively over the
//     module call graph.
//   - guardedby: fields annotated `// guarded by <field>` may only be
//     accessed while that instance's lock is in the lockset (write lock
//     for writes).
//   - atomicplain: a field accessed via sync/atomic anywhere must never
//     be accessed plainly elsewhere.
//   - lockbalance: every path through a function leaves the lockset as
//     it entered — no early-return missing-Unlock.
//
// The last four share the flow-sensitive layer in cfg.go, module.go and
// lockset.go: per-function basic-block CFGs, a type-resolved static call
// graph with interface widening, and a lockset dataflow fixpoint.
//
// Diagnostics can be suppressed with a justified comment on the flagged
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore without one is inert. A justified
// ignore that suppresses nothing is itself reported (unusedignore), so
// stale suppressions cannot accumulate.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col display and
// machine consumption (-json).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer proves.
	Doc string
	// NeedsModule requests the whole-tree Module view (CFGs, call
	// graph, lockset analysis) on the pass. Run builds it once and
	// shares it across analyzers.
	NeedsModule bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Module is the whole-tree view (call graph, CFGs, lockset
	// analysis); nil unless the analyzer sets NeedsModule.
	Module *Module

	pkg      *Package
	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ignoreKey addresses one (file, line) pair in the suppression index.
type ignoreKey struct {
	file string
	line int
}

// directive is one justified //lint:ignore comment, tracked so unused
// suppressions — a directive whose analyzer never fired on its lines —
// are themselves reported (the unusedignore check). Directives are
// kept in a slice in scan order so reporting is deterministic without
// ranging over the index map.
type directive struct {
	file string
	line int // the directive's own line
	name string
	used bool
}

// ignoreIndex maps source lines to the directives covering them. A
// directive covers its own line (trailing comment) and the line
// directly below it (comment above the flagged statement).
type ignoreIndex struct {
	byLine map[ignoreKey][]*directive
	all    []*directive
}

// buildIgnoreIndex scans a package's comments for lint:ignore directives.
// Directives without a reason are inert — suppressions must be justified —
// and inert directives are not tracked for unusedignore either.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, idx *ignoreIndex) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					// No analyzer name or no reason: inert.
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line, name: fields[0]}
				idx.all = append(idx.all, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{file: pos.Filename, line: line}
					idx.byLine[key] = append(idx.byLine[key], d)
				}
			}
		}
	}
}

// suppressed reports whether a matching directive covers d, marking
// every matching directive used.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	for _, dir := range idx.byLine[ignoreKey{file: d.File, line: d.Line}] {
		if dir.name == d.Analyzer || dir.name == "all" {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// unusedFindings reports directives that suppressed nothing. Only
// directives naming an analyzer that actually ran (or "all") are
// eligible: golden tests run analyzer subsets, and a directive for an
// analyzer outside the subset is not stale, just out of scope.
func (idx *ignoreIndex) unusedFindings(running map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range idx.all {
		if dir.used {
			continue
		}
		if dir.name != "all" && !running[dir.name] {
			continue
		}
		msg := fmt.Sprintf("unused lint:ignore directive: no %s finding on this line", dir.name)
		if dir.name == "all" {
			msg = "unused lint:ignore directive: no finding on this line"
		}
		out = append(out, Diagnostic{
			Analyzer: "unusedignore",
			File:     dir.file,
			Line:     dir.line,
			Col:      1,
			Message:  msg,
		})
	}
	return out
}

// suppressedExplicit is the suppression check for unusedignore's own
// findings: only a directive explicitly naming "unusedignore" counts —
// a wildcard "all" must not hide its own staleness.
func (idx *ignoreIndex) suppressedExplicit(d Diagnostic) bool {
	hit := false
	for _, dir := range idx.byLine[ignoreKey{file: d.File, line: d.Line}] {
		if dir.name == d.Analyzer {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped; a
// justified suppression that suppressed nothing becomes an unusedignore
// finding of its own.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := &ignoreIndex{byLine: map[ignoreKey][]*directive{}}
	for _, pkg := range pkgs {
		buildIgnoreIndex(pkg.Fset, pkg.Files, ignores)
	}
	var module *Module
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
		if a.NeedsModule && module == nil {
			module = NewModule(pkgs)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				pkg:      pkg,
				analyzer: a,
				sink:     &diags,
			}
			if a.NeedsModule {
				pass.Module = module
			}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	seen := map[Diagnostic]bool{}
	for _, d := range diags {
		if ignores.suppressed(d) || seen[d] {
			continue
		}
		seen[d] = true
		kept = append(kept, d)
	}
	// Stale suppressions are findings too — suppressible only by a
	// directive explicitly naming unusedignore, never by a wildcard.
	for _, d := range ignores.unusedFindings(running) {
		if ignores.suppressedExplicit(d) || seen[d] {
			continue
		}
		seen[d] = true
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// WriteJSON renders diagnostics as an indented JSON array (empty array,
// not null, when there are none) for machine consumption.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// Report is the -json envelope: which analyzers ran, and what they
// found. CI greps Analyzers to assert the whole suite is registered.
type Report struct {
	Analyzers []string     `json:"analyzers"`
	Findings  []Diagnostic `json:"findings"`
}

// WriteReport renders the envelope form of -json output.
func WriteReport(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Analyzers: names, Findings: diags})
}

// Analyzers returns the production suite configured for this module's
// package layout. Golden tests construct analyzers with fixture-specific
// configurations instead.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewCheckpointLeak(),
		NewMapOrder(),
		NewWalltime(WalltimeConfig{
			AllowPkgs: []string{"mcfs/internal/simclock"},
		}),
		NewErrnoDrop(ErrnoDropConfig{
			ErrorCallPkgPrefixes: []string{"mcfs/internal/", "mcfs"},
		}),
		NewNilObs(NilObsConfig{
			Targets: map[string][]string{
				"mcfs/internal/obs":         {"Hub", "Counter", "Gauge", "Histogram", "Reporter"},
				"mcfs/internal/obs/journal": {"Writer", "Recorder"},
				"mcfs/internal/obs/perf":    {"Profiler"},
				"mcfs/internal/obs/stream":  {"Bus", "Subscriber"},
				// The engine calls the governor unconditionally on its
				// visit hot path; a nil governor must stay inert.
				"mcfs/internal/mc/visited": {"Governor"},
			},
		}),
		// The flow-sensitive concurrency suite (CFG + call graph +
		// lockset dataflow over the whole module).
		NewLockOrder(),
		NewGuardedBy(),
		NewAtomicPlain(),
		NewLockBalance(),
	}
}
