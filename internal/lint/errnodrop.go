package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrnoDropConfig configures the errnodrop analyzer.
type ErrnoDropConfig struct {
	// ErrorCallPkgPrefixes: a call dropping a plain error result is only
	// reported when the callee's package path starts with one of these
	// prefixes — the module's own kernel/vfs/fs surface. (Errno results
	// are reported wherever the callee lives: Errno is this domain's
	// type, and dropping one always loses a verification signal.)
	ErrorCallPkgPrefixes []string
}

// NewErrnoDrop builds the errnodrop analyzer.
//
// Every vfs/kernel/fs operation reports failure through an error or an
// errno.Errno, and the checker's whole job is comparing those outcomes
// across targets. A call statement that drops such a result silently
// swallows an EIO or a failed sync — the kind of miss that turns a real
// discrepancy into a phantom pass. An explicit `_ =` assignment remains
// legal: it is a visible, greppable statement of intent.
func NewErrnoDrop(cfg ErrnoDropConfig) *Analyzer {
	a := &Analyzer{
		Name: "errnodrop",
		Doc: "error and Errno results of kernel/vfs/fs operations must not be " +
			"discarded by expression statements in non-test code",
	}
	a.Run = func(pass *Pass) { runErrnoDrop(pass, cfg) }
	return a
}

func runErrnoDrop(pass *Pass, cfg ErrnoDropConfig) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return true // conversion, builtin, or unknown
			}
			results := sig.Results()
			var dropped []string
			for i := 0; i < results.Len(); i++ {
				rt := results.At(i).Type()
				switch {
				case isErrnoType(rt):
					dropped = append(dropped, rt.String())
				case isErrorType(rt) && calleeInPkgs(pass, call, cfg.ErrorCallPkgPrefixes):
					dropped = append(dropped, "error")
				}
			}
			if len(dropped) > 0 {
				name, _ := calleeName(call)
				pass.Reportf(stmt.Pos(),
					"result of %s (%s) is discarded: handle it or assign it to _ explicitly",
					name, strings.Join(dropped, ", "))
			}
			return true
		})
	}
}

func isErrnoType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Errno"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeInPkgs reports whether the called function or method is declared
// in a package whose import path starts with one of the prefixes.
func calleeInPkgs(pass *Pass, call *ast.CallExpr, prefixes []string) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.Info.Uses[fun.Sel]
		}
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	}
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}
