package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The lockset engine: a forward dataflow analysis over each function's
// CFG tracking which mutexes are held at every program point. Lock
// identity is per-instance — the root identifier's object plus the
// rendered selector path ("s.mu", "other.mu", "sh.mu") — so two locks
// of the same type on different receivers stay distinct. Each lock also
// carries a type-level ID ("visited.Set.mu") for the global acquisition
// order graph.
//
// `defer mu.Unlock()` marks the held lock deferred: it stays in the
// lockset (the lock IS held for guardedby/lockorder purposes) but is
// filtered out when exit balance is checked. Deferred func literals are
// scanned for the unlocks they perform. `go func(){...}` bodies are
// excluded entirely: they do not run under the spawning function's
// locks. Non-go func literals contribute their acquires and calls to
// the enclosing function's lockorder summary (at the literal's
// position, under the lockset then held) but are not themselves
// flow-analyzed within the caller.
//
// Entry locksets: an unexported function assumes, at entry, the
// intersection of the locksets its call sites hold (mapped through the
// receiver chain), computed in a first round that analyzes everything
// lock-free. This is how `rebill` — documented "callers hold the table
// write lock" — knows s.mu is held. Exported functions assume nothing.

// heldLock is one mutex known to be held.
type heldLock struct {
	root     types.Object // object of the leftmost ident ("s" in s.mu)
	path     string       // rendered chain, e.g. "s.mu"
	typeID   string       // type-level ID, e.g. "visited.Set.mu"
	rlock    bool         // acquired via RLock
	deferred bool         // release is a pending defer
	pos      token.Pos    // acquisition site
}

// key is the per-instance identity used for set membership.
func (h heldLock) key() string {
	mode := "w"
	if h.rlock {
		mode = "r"
	}
	return h.path + "\x00" + mode + "\x00" + objKey(h.root)
}

// instKey ignores mode: Lock and RLock of one mutex are the same
// instance for release matching.
func (h heldLock) instKey() string {
	return h.path + "\x00" + objKey(h.root)
}

func objKey(o types.Object) string {
	if o == nil {
		return "?"
	}
	return o.Name() + "@" + strconv.Itoa(int(o.Pos()))
}

// lockset is an ordered set of held locks (sorted by key).
type lockset []heldLock

func (ls lockset) clone() lockset {
	out := make(lockset, len(ls))
	copy(out, ls)
	return out
}

func (ls lockset) with(h heldLock) lockset {
	out := ls.clone()
	out = append(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// without removes the lock instance matching k, reporting whether it
// was present.
func (ls lockset) without(instKey string) (lockset, bool) {
	for i, h := range ls {
		if h.instKey() == instKey {
			out := make(lockset, 0, len(ls)-1)
			out = append(out, ls[:i]...)
			out = append(out, ls[i+1:]...)
			return out, true
		}
	}
	return ls, false
}

func (ls lockset) find(instKey string) (heldLock, bool) {
	for _, h := range ls {
		if h.instKey() == instKey {
			return h, true
		}
	}
	return heldLock{}, false
}

func (ls lockset) fingerprint() string {
	var sb strings.Builder
	for _, h := range ls {
		sb.WriteString(h.key())
		if h.deferred {
			sb.WriteByte('d')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// lockEvent records one acquisition and the locks held at that moment.
type lockEvent struct {
	lock heldLock
	held lockset
	pkg  *Package
}

// callEvent records a resolved call and the locks held around it.
type callEvent struct {
	callees []*modFunc
	held    lockset
	pos     token.Pos
	pkg     *Package
	// recvExpr is the receiver expression for method calls (nil for
	// plain calls); used to map caller-held locks into the callee frame
	// for entry-lockset inference.
	recvExpr ast.Expr
}

// accessEvent records a read or write of a guarded field.
type accessEvent struct {
	spec     *guardSpec
	write    bool
	held     lockset
	pos      token.Pos
	pkg      *Package
	baseExpr ast.Expr // the base of the selector ("s" in s.table)
}

// exitEvent is one path reaching the function exit.
type exitEvent struct {
	held lockset // after dropping deferred releases
	pos  token.Pos
}

// unlockFault is an Unlock with no matching lock on some path.
type unlockFault struct {
	path string
	pos  token.Pos
}

// funcAnalysis is the lockset engine's result for one function.
type funcAnalysis struct {
	fn        *modFunc
	entry     lockset
	imprecise bool
	acquires  []lockEvent
	calls     []callEvent
	accesses  []accessEvent
	exits     []exitEvent
	unlockErr []unlockFault
}

// modAnalysis is the module-wide fixpoint result.
type modAnalysis struct {
	funcs map[*types.Func]*funcAnalysis
	order []*funcAnalysis
	// transAcquires maps each function to the type-level IDs of locks
	// it (transitively) acquires, with a witness position per ID.
	transAcquires map[*types.Func]map[string]token.Pos
}

// maxLocksetVariants bounds the per-block lockset states tracked before
// a function is declared imprecise and skipped; branch-dependent
// locking past this depth is beyond the engine's precision.
const maxLocksetVariants = 8

// LockAnalysis computes (and caches) the two-round lockset analysis.
func (m *Module) LockAnalysis() *modAnalysis {
	if m.lockResult != nil {
		return m.lockResult
	}
	// Round 1: empty entry locksets; harvest call-site locksets.
	round1 := m.runRound(nil)
	entries := m.inferEntries(round1)
	// Round 2: final analysis under the inferred entry locksets.
	result := m.runRound(entries)
	result.transAcquires = m.transitiveAcquires(result)
	m.lockResult = result
	return result
}

func (m *Module) runRound(entries map[*types.Func]lockset) *modAnalysis {
	res := &modAnalysis{funcs: map[*types.Func]*funcAnalysis{}}
	for _, mf := range m.order {
		fa := m.analyzeFunc(mf, entries[mf.obj])
		res.funcs[mf.obj] = fa
		res.order = append(res.order, fa)
	}
	return res
}

// inferEntries intersects call-site locksets (mapped into the callee
// frame) for unexported module functions.
func (m *Module) inferEntries(round *modAnalysis) map[*types.Func]lockset {
	type siteSet struct {
		sets []lockset
	}
	sites := map[*types.Func]*siteSet{}
	for _, fa := range round.order {
		if fa.imprecise {
			continue
		}
		for _, ce := range fa.calls {
			for _, callee := range ce.callees {
				if callee.obj.Exported() {
					continue
				}
				mapped := mapLockset(fa.fn.pkg, ce, callee)
				ss := sites[callee.obj]
				if ss == nil {
					ss = &siteSet{}
					sites[callee.obj] = ss
				}
				ss.sets = append(ss.sets, mapped)
			}
		}
	}
	entries := map[*types.Func]lockset{}
	for _, mf := range m.order {
		ss := sites[mf.obj]
		if ss == nil || len(ss.sets) == 0 {
			continue
		}
		inter := ss.sets[0]
		for _, s := range ss.sets[1:] {
			inter = intersectLocksets(inter, s)
		}
		if len(inter) > 0 {
			entries[mf.obj] = inter
		}
	}
	return entries
}

// mapLockset rewrites caller-held locks into the callee's frame: a
// lock rooted at the call's receiver chain maps onto the callee's
// receiver parameter; package-level locks pass through unchanged;
// everything else is dropped (unknown in the callee).
func mapLockset(pkg *Package, ce callEvent, callee *modFunc) lockset {
	var recvPath string
	var recvRoot types.Object
	var calleeRecv types.Object
	var calleeRecvName string
	if ce.recvExpr != nil && callee.decl.Recv != nil && len(callee.decl.Recv.List) == 1 {
		recvPath = renderPath(ce.recvExpr)
		recvRoot = rootObjOf(pkg, ce.recvExpr)
		names := callee.decl.Recv.List[0].Names
		if len(names) == 1 {
			calleeRecvName = names[0].Name
			calleeRecv = callee.pkg.Info.Defs[names[0]]
		}
	}
	var out lockset
	for _, h := range ce.held {
		if h.root != nil && h.root.Parent() != nil && h.root.Pkg() != nil &&
			h.root.Parent() == h.root.Pkg().Scope() {
			// Package-level lock: visible as-is in the callee.
			out = append(out, h)
			continue
		}
		if recvPath == "" || calleeRecv == nil || recvRoot == nil {
			continue
		}
		if h.root != recvRoot || !strings.HasPrefix(h.path, recvPath+".") {
			continue
		}
		nh := h
		nh.root = calleeRecv
		nh.path = calleeRecvName + h.path[len(recvPath):]
		nh.deferred = false // the caller's defer is not the callee's
		out = append(out, nh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func intersectLocksets(a, b lockset) lockset {
	var out lockset
	for _, h := range a {
		if _, ok := b.find(h.instKey()); ok {
			out = append(out, h)
		}
	}
	return out
}

// transitiveAcquires runs the acquire-set fixpoint over the call graph:
// a function's set is its direct acquisitions plus everything its
// resolved callees acquire.
func (m *Module) transitiveAcquires(res *modAnalysis) map[*types.Func]map[string]token.Pos {
	acq := map[*types.Func]map[string]token.Pos{}
	for _, fa := range res.order {
		set := map[string]token.Pos{}
		for _, ev := range fa.acquires {
			if ev.lock.typeID == "" {
				continue
			}
			if old, ok := set[ev.lock.typeID]; !ok || ev.lock.pos < old {
				set[ev.lock.typeID] = ev.lock.pos
			}
		}
		acq[fa.fn.obj] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fa := range res.order {
			set := acq[fa.fn.obj]
			for _, ce := range fa.calls {
				for _, callee := range ce.callees {
					for id, pos := range acq[callee.obj] {
						if old, ok := set[id]; !ok || pos < old {
							if !ok {
								changed = true
							}
							set[id] = pos
						}
					}
				}
			}
		}
	}
	return acq
}

// analyzeFunc runs the per-function dataflow walk.
func (m *Module) analyzeFunc(mf *modFunc, entry lockset) *funcAnalysis {
	fa := &funcAnalysis{fn: mf, entry: entry, imprecise: mf.cfg.imprecise}
	if fa.imprecise {
		return fa
	}
	g := mf.cfg

	// Per-block sets of possible entry locksets, keyed by fingerprint.
	type blockState struct {
		sets  []lockset
		fps   map[string]bool
		inQ   bool
		burst bool // variant cap exceeded
	}
	states := make([]*blockState, len(g.blocks))
	for i := range states {
		states[i] = &blockState{fps: map[string]bool{}}
	}
	add := func(bs *blockState, ls lockset) bool {
		fp := ls.fingerprint()
		if bs.fps[fp] {
			return false
		}
		if len(bs.sets) >= maxLocksetVariants {
			bs.burst = true
			return false
		}
		bs.fps[fp] = true
		bs.sets = append(bs.sets, ls)
		return true
	}
	if entry == nil {
		entry = lockset{}
	}
	add(states[g.entry.index], entry)

	w := &locksetWalker{m: m, pkg: mf.pkg, fa: fa}

	// Fixpoint: propagate locksets until stable. Events are emitted
	// during propagation and deduped afterwards.
	queue := []*cfgBlock{g.entry}
	states[g.entry.index].inQ = true
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		states[blk.index].inQ = false
		for _, ls := range states[blk.index].sets {
			out := w.walkBlock(blk, ls)
			if blk == g.exit {
				continue
			}
			for _, succ := range blk.succs {
				if succ == g.exit {
					fa.exits = append(fa.exits, exitEvent{held: dropDeferred(out), pos: blk.exitPos})
					continue
				}
				if add(states[succ.index], out) && !states[succ.index].inQ {
					states[succ.index].inQ = true
					queue = append(queue, succ)
				}
			}
		}
	}
	for _, bs := range states {
		if bs.burst {
			fa.imprecise = true
		}
	}
	if fa.imprecise {
		// Results from a blown-out state space are unreliable.
		fa.acquires, fa.calls, fa.accesses, fa.exits, fa.unlockErr = nil, nil, nil, nil, nil
		return fa
	}
	dedupeEvents(fa)
	return fa
}

func dropDeferred(ls lockset) lockset {
	var out lockset
	for _, h := range ls {
		if !h.deferred {
			out = append(out, h)
		}
	}
	return out
}

// dedupeEvents collapses events re-emitted by the fixpoint revisiting a
// block, keyed by position + held fingerprint, preserving order.
func dedupeEvents(fa *funcAnalysis) {
	seenA := map[string]bool{}
	var acquires []lockEvent
	for _, e := range fa.acquires {
		k := strconv.Itoa(int(e.lock.pos)) + "|" + e.held.fingerprint()
		if !seenA[k] {
			seenA[k] = true
			acquires = append(acquires, e)
		}
	}
	fa.acquires = acquires
	seenC := map[string]bool{}
	var calls []callEvent
	for _, e := range fa.calls {
		k := strconv.Itoa(int(e.pos)) + "|" + e.held.fingerprint()
		if !seenC[k] {
			seenC[k] = true
			calls = append(calls, e)
		}
	}
	fa.calls = calls
	seenAcc := map[string]bool{}
	var accesses []accessEvent
	for _, e := range fa.accesses {
		k := strconv.Itoa(int(e.pos)) + "|" + e.held.fingerprint()
		if !seenAcc[k] {
			seenAcc[k] = true
			accesses = append(accesses, e)
		}
	}
	fa.accesses = accesses
	seenE := map[string]bool{}
	var exits []exitEvent
	for _, e := range fa.exits {
		k := strconv.Itoa(int(e.pos)) + "|" + e.held.fingerprint()
		if !seenE[k] {
			seenE[k] = true
			exits = append(exits, e)
		}
	}
	fa.exits = exits
	seenU := map[string]bool{}
	var faults []unlockFault
	for _, e := range fa.unlockErr {
		k := strconv.Itoa(int(e.pos))
		if !seenU[k] {
			seenU[k] = true
			faults = append(faults, e)
		}
	}
	fa.unlockErr = faults
}

// locksetWalker interprets one block's nodes under one entry lockset.
type locksetWalker struct {
	m   *Module
	pkg *Package
	fa  *funcAnalysis
}

func (w *locksetWalker) walkBlock(blk *cfgBlock, ls lockset) lockset {
	for _, n := range blk.nodes {
		ls = w.walkNode(n, ls)
	}
	return ls
}

// walkNode interprets one statement or expression, emitting events and
// returning the updated lockset.
func (w *locksetWalker) walkNode(n ast.Node, ls lockset) lockset {
	switch s := n.(type) {
	case *ast.GoStmt:
		// Goroutine bodies run concurrently, not under these locks.
		return ls
	case *ast.DeferStmt:
		return w.walkDefer(s, ls)
	}
	// Generic walk: find lock operations, guarded accesses, and calls
	// in source order, skipping FuncLit and GoStmt subtrees (FuncLits
	// still contribute acquire/call summaries at their position).
	ls = w.scanExpr(n, ls, scanCtx{})
	return ls
}

// scanCtx carries write-context flags down the expression walk.
type scanCtx struct {
	write bool
}

func (w *locksetWalker) scanExpr(n ast.Node, ls lockset, ctx scanCtx) lockset {
	switch e := n.(type) {
	case nil:
		return ls

	case *ast.ExprStmt:
		return w.scanExpr(e.X, ls, scanCtx{})

	case *ast.AssignStmt:
		for _, rhs := range e.Rhs {
			ls = w.scanExpr(rhs, ls, scanCtx{})
		}
		for _, lhs := range e.Lhs {
			ls = w.scanExpr(lhs, ls, scanCtx{write: true})
		}
		return ls

	case *ast.IncDecStmt:
		return w.scanExpr(e.X, ls, scanCtx{write: true})

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Address taken: the pointee may be written through it.
			return w.scanExpr(e.X, ls, scanCtx{write: true})
		}
		return w.scanExpr(e.X, ls, ctx)

	case *ast.CallExpr:
		return w.scanCall(e, ls)

	case *ast.FuncLit:
		// Closure bodies are not flow-analyzed in the caller, but
		// their acquires and resolved calls join the lockorder summary
		// at the literal's position under the current lockset.
		w.summarizeFuncLit(e, ls)
		return ls

	case *ast.GoStmt:
		return ls

	case *ast.DeferStmt:
		return w.walkDefer(e, ls)

	case *ast.SelectorExpr:
		ls = w.scanExpr(e.X, ls, scanCtx{})
		w.checkGuardedAccess(e, ls, ctx.write)
		return ls

	case *ast.Ident, *ast.BasicLit:
		return ls

	case *ast.KeyValueExpr:
		// Composite-literal keys are field names, not accesses.
		return w.scanExpr(e.Value, ls, scanCtx{})

	case *ast.IndexExpr:
		ls = w.scanExpr(e.X, ls, ctx)
		return w.scanExpr(e.Index, ls, scanCtx{})

	case *ast.BlockStmt:
		// Nested blocks appear as single CFG nodes only when dead;
		// walk them anyway for event completeness.
		for _, st := range e.List {
			ls = w.scanExpr(st, ls, scanCtx{})
		}
		return ls
	}

	// Default: walk all children with a neutral context.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		ls = w.scanExpr(c, ls, ctx)
	}
	return ls
}

// scanCall handles Lock/Unlock calls, builtin write-through calls
// (delete), and module-call events.
func (w *locksetWalker) scanCall(call *ast.CallExpr, ls lockset) lockset {
	// Builtin delete(m, k) writes its first argument's map.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		ls = w.scanExpr(call.Args[0], ls, scanCtx{write: true})
		return w.scanExpr(call.Args[1], ls, scanCtx{})
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		if op := w.syncLockOp(sel); op != "" {
			return w.applyLockOp(op, sel.X, call.Pos(), ls, false)
		}
	}

	// Walk receiver and args first (they evaluate before the call).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ls = w.scanExpr(sel.X, ls, scanCtx{})
	}
	for _, a := range call.Args {
		ls = w.scanExpr(a, ls, scanCtx{})
	}

	if callees := w.m.resolveCallees(w.pkg, call); len(callees) > 0 {
		var recv ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if w.pkg.Info.Selections[sel] != nil {
				recv = sel.X
			}
		}
		w.fa.calls = append(w.fa.calls, callEvent{
			callees:  callees,
			held:     ls.clone(),
			pos:      call.Pos(),
			pkg:      w.pkg,
			recvExpr: recv,
		})
	}
	return ls
}

// syncLockOp reports "Lock"/"Unlock"/"RLock"/"RUnlock" when sel is a
// method of sync.Mutex or sync.RWMutex, else "".
func (w *locksetWalker) syncLockOp(sel *ast.SelectorExpr) string {
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	fn, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	return name
}

// applyLockOp updates the lockset for one Lock/Unlock call. asDefer
// marks the release pending rather than removing the lock.
func (w *locksetWalker) applyLockOp(op string, lockExpr ast.Expr, pos token.Pos, ls lockset, asDefer bool) lockset {
	path := renderPath(lockExpr)
	root := rootObjOf(w.pkg, lockExpr)
	if path == "" {
		// A lock reached through an index or call: beyond per-instance
		// tracking; ignore rather than guess.
		return ls
	}
	h := heldLock{
		root:   root,
		path:   path,
		typeID: typeIDFor(w.pkg, lockExpr),
		rlock:  op == "RLock",
		pos:    pos,
	}
	switch op {
	case "Lock", "RLock":
		w.fa.acquires = append(w.fa.acquires, lockEvent{lock: h, held: ls.clone(), pkg: w.pkg})
		if _, already := ls.find(h.instKey()); already {
			// Re-acquiring a held instance: a self-deadlock at runtime;
			// lockorder reports it via the acquire event's held set.
			return ls
		}
		return ls.with(h)
	case "Unlock", "RUnlock":
		if asDefer {
			out := ls.clone()
			for i := range out {
				if out[i].instKey() == h.instKey() {
					out[i].deferred = true
				}
			}
			return out
		}
		out, found := ls.without(h.instKey())
		if !found {
			w.fa.unlockErr = append(w.fa.unlockErr, unlockFault{path: path, pos: pos})
		}
		return out
	}
	return ls
}

// walkDefer handles defer statements: deferred unlocks mark their lock
// pending-release; a deferred func literal is scanned for the unlocks
// it performs; any other deferred module call is recorded as a call
// event (it runs at exit, but under at most these locks).
func (w *locksetWalker) walkDefer(d *ast.DeferStmt, ls lockset) lockset {
	call := d.Call
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		if op := w.syncLockOp(sel); op == "Unlock" || op == "RUnlock" {
			return w.applyLockOp(op, sel.X, call.Pos(), ls, true)
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Mark every lock the deferred closure unlocks.
		out := ls
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isGo := n.(*ast.GoStmt); isGo {
				return false
			}
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			if !ok || len(c.Args) != 0 {
				return true
			}
			if op := w.syncLockOp(sel); op == "Unlock" || op == "RUnlock" {
				out = w.applyLockOp(op, sel.X, c.Pos(), out, true)
			}
			return true
		})
		return out
	}
	if callees := w.m.resolveCallees(w.pkg, call); len(callees) > 0 {
		var recv ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if w.pkg.Info.Selections[sel] != nil {
				recv = sel.X
			}
		}
		w.fa.calls = append(w.fa.calls, callEvent{
			callees: callees, held: ls.clone(), pos: call.Pos(), pkg: w.pkg, recvExpr: recv,
		})
	}
	return ls
}

// summarizeFuncLit contributes a non-go closure's acquires and resolved
// calls to the enclosing function's summary at the literal's position.
func (w *locksetWalker) summarizeFuncLit(lit *ast.FuncLit, ls lockset) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			return nn == lit
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok && len(nn.Args) == 0 {
				if op := w.syncLockOp(sel); op == "Lock" || op == "RLock" {
					path := renderPath(sel.X)
					if path != "" {
						h := heldLock{
							root:   rootObjOf(w.pkg, sel.X),
							path:   path,
							typeID: typeIDFor(w.pkg, sel.X),
							rlock:  op == "RLock",
							pos:    nn.Pos(),
						}
						w.fa.acquires = append(w.fa.acquires, lockEvent{lock: h, held: ls.clone(), pkg: w.pkg})
					}
					return true
				}
				if op := w.syncLockOp(sel); op != "" {
					return true
				}
			}
			if callees := w.m.resolveCallees(w.pkg, nn); len(callees) > 0 {
				w.fa.calls = append(w.fa.calls, callEvent{
					callees: callees, held: ls.clone(), pos: nn.Pos(), pkg: w.pkg,
				})
			}
		}
		return true
	})
}

// checkGuardedAccess records an access event when sel resolves to an
// annotated field accessed through a plain base chain.
func (w *locksetWalker) checkGuardedAccess(sel *ast.SelectorExpr, ls lockset, write bool) {
	id := sel.Sel
	obj := w.pkg.Info.Uses[id]
	fv, ok := obj.(*types.Var)
	if !ok || !fv.IsField() {
		return
	}
	spec := w.m.guarded[fv]
	if spec == nil {
		return
	}
	w.fa.accesses = append(w.fa.accesses, accessEvent{
		spec:     spec,
		write:    write,
		held:     ls.clone(),
		pos:      sel.Sel.Pos(),
		pkg:      w.pkg,
		baseExpr: sel.X,
	})
}
