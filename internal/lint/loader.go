package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package in the tree under
// analysis.
type Package struct {
	// Path is the package's import path within the tree.
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// chainImporter resolves imports from the tree under analysis first and
// falls back to the toolchain for everything else (stdlib). The gc
// importer (compiled export data) is tried before the source importer,
// which works even with a cold build cache but is slower.
type chainImporter struct {
	local  map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	if pkg, err := c.gc.Import(path); err == nil {
		return pkg, nil
	}
	return c.source.Import(path)
}

// LoadModule locates the enclosing Go module (walking up from root to
// find go.mod) and loads every non-test package in it. Directories named
// testdata or vendor, and hidden directories, are skipped.
func LoadModule(root string) ([]*Package, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	return LoadTree(modRoot, modPath)
}

func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// topoOrder returns a dependencies-first ordering of the packages in
// imports (package path → sorted intra-tree deps). The result is a
// pure function of its input: roots are visited in sorted order and
// each node's dependency list is required pre-sorted, so the
// type-check order — and therefore every downstream artifact (object
// positions, diagnostic order, the call graph) — never depends on map
// iteration. The maporder analyzer is dogfooded on this file; the
// collect-then-sort shape here is what it enforces module-wide.
func topoOrder(imports map[string][]string) ([]string, error) {
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		for _, dep := range imports[p] {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// LoadTree parses and type-checks every non-test package under root.
// Import paths are formed as modPath + "/" + relative directory (or just
// the relative directory when modPath is empty, as the golden-test
// harness uses for testdata trees).
func LoadTree(root, modPath string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	type rawPkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	raw := map[string]*rawPkg{}

	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := filepath.ToSlash(rel)
		if importPath == "." {
			importPath = ""
		}
		if modPath != "" {
			if importPath == "" {
				importPath = modPath
			} else {
				importPath = modPath + "/" + importPath
			}
		}
		if importPath == "" {
			// A file directly under a rootless tree has no import path;
			// give it one so it can still be analyzed.
			importPath = "main"
		}
		p := raw[importPath]
		if p == nil {
			p = &rawPkg{path: importPath, dir: dir, imports: map[string]bool{}}
			raw[importPath] = p
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			p.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order packages by their intra-tree imports so each
	// package's dependencies are type-checked before it.
	imports := make(map[string][]string, len(raw))
	for p, rp := range raw {
		deps := make([]string, 0, len(rp.imports))
		for dep := range rp.imports {
			if _, ours := raw[dep]; ours {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		imports[p] = deps
	}
	order, err := topoOrder(imports)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		local:  map[string]*types.Package{},
		gc:     importer.ForCompiler(fset, "gc", nil),
		source: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		// Deterministic file order: the walk already visits files sorted,
		// but make it explicit — analyzer output order depends on it.
		sort.Slice(rp.files, func(i, j int) bool {
			return fset.Position(rp.files[i].Pos()).Filename < fset.Position(rp.files[j].Pos()).Filename
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
		}
		imp.local[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   rp.dir,
			Fset:  fset,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
