package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Module is the whole-tree view behind the flow-sensitive analyzers:
// every function declaration with its CFG, a type-resolved static call
// graph (interface method calls widened to the implementers the loader
// found), the `// guarded by <field>` annotations, and the sync/atomic
// field index. It is built once per Run when any requested analyzer
// sets NeedsModule, and shared by every pass.
//
// Known imprecision, by design: calls through func values (callbacks,
// stored hooks) are not resolved, goroutine bodies are excluded from
// their spawning function's summaries (they do not run while the caller
// holds its locks), and a function whose CFG could not be modeled
// (goto) is skipped by the dataflow analyzers rather than analyzed
// wrongly.
type Module struct {
	Pkgs []*Package
	Fset *token.FileSet

	funcs map[*types.Func]*modFunc
	// order lists functions deterministically (by source position).
	order []*modFunc
	// guarded maps a struct field to its parsed guard annotation.
	guarded map[*types.Var]*guardSpec
	// namedTypes lists the tree's named types (position order) for
	// interface widening.
	namedTypes []*types.Named

	lockResult *modAnalysis // lazily built by LockAnalysis
	atomResult *atomicIndex // lazily built by atomicFields
	orderGraph *orderGraph  // lazily built by lockOrderGraph
}

// modFunc is one function or method declaration in the tree.
type modFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	cfg  *funcCFG
}

// guardSpec is one `// guarded by <name>` field annotation.
type guardSpec struct {
	field *types.Var
	guard string // sibling field named in the annotation
	owner *types.Named
	pkg   *Package
	pos   token.Pos
}

var guardedByRe = regexp.MustCompile(`guarded\s+by\s+([A-Za-z_][A-Za-z0-9_]*)`)

// NewModule builds the module view over the loaded packages.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:    pkgs,
		funcs:   map[*types.Func]*modFunc{},
		guarded: map[*types.Var]*guardSpec{},
	}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					mf := &modFunc{obj: obj, decl: d, pkg: pkg, cfg: buildCFG(d.Body)}
					m.funcs[obj] = mf
					m.order = append(m.order, mf)
				case *ast.GenDecl:
					m.collectTypeDecl(pkg, d)
				}
			}
		}
		m.collectNamedTypes(pkg)
	}
	sort.Slice(m.order, func(i, j int) bool {
		return m.order[i].decl.Pos() < m.order[j].decl.Pos()
	})
	sort.Slice(m.namedTypes, func(i, j int) bool {
		return m.namedTypes[i].Obj().Pos() < m.namedTypes[j].Obj().Pos()
	})
	return m
}

// collectTypeDecl records `// guarded by` annotations on struct fields.
func (m *Module) collectTypeDecl(pkg *Package, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		tobj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
		var owner *types.Named
		if tobj != nil {
			owner, _ = tobj.Type().(*types.Named)
		}
		for _, field := range st.Fields.List {
			guard := guardAnnotation(field)
			if guard == "" {
				continue
			}
			for _, name := range field.Names {
				fv, _ := pkg.Info.Defs[name].(*types.Var)
				if fv == nil {
					continue
				}
				m.guarded[fv] = &guardSpec{
					field: fv,
					guard: guard,
					owner: owner,
					pkg:   pkg,
					pos:   name.Pos(),
				}
			}
		}
	}
}

// guardAnnotation extracts the guard field name from a struct field's
// doc or trailing comment, or "" if the field carries no annotation.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if mm := guardedByRe.FindStringSubmatch(cg.Text()); mm != nil {
			return mm[1]
		}
	}
	return ""
}

// collectNamedTypes gathers package-scope named types for interface
// widening, in deterministic (sorted-name) order.
func (m *Module) collectNamedTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	names := scope.Names() // already sorted by go/types
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				m.namedTypes = append(m.namedTypes, named)
			}
		}
	}
}

// GuardedFields returns the annotated fields in deterministic order.
func (m *Module) GuardedFields() []*guardSpec {
	specs := make([]*guardSpec, 0, len(m.guarded))
	for _, s := range m.guarded {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].pos < specs[j].pos })
	return specs
}

// resolveCallees resolves a call expression to the module functions it
// may invoke. Concrete calls resolve to at most one; a call through an
// interface method widens to that method on every module type that
// implements the interface. Calls through func values resolve to none.
func (m *Module) resolveCallees(pkg *Package, call *ast.CallExpr) []*modFunc {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if mf := m.funcs[fn]; mf != nil {
				return []*modFunc{mf}
			}
		}
	case *ast.SelectorExpr:
		sel := pkg.Info.Selections[fun]
		if sel == nil {
			// Package-qualified call: pkgname.Func.
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if mf := m.funcs[fn]; mf != nil {
					return []*modFunc{mf}
				}
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		fn, _ := sel.Obj().(*types.Func)
		if fn == nil {
			return nil
		}
		recv := sel.Recv()
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			return m.widenInterfaceCall(iface, fn.Name())
		}
		if mf := m.funcs[fn]; mf != nil {
			return []*modFunc{mf}
		}
		// A promoted or generic method: try resolving by receiver's
		// named type.
		if named := namedOf(recv); named != nil {
			if mf := m.lookupMethod(named, fn.Name()); mf != nil {
				return []*modFunc{mf}
			}
		}
	}
	return nil
}

// widenInterfaceCall returns method name on every module named type
// implementing iface (checking pointer receivers too).
func (m *Module) widenInterfaceCall(iface *types.Interface, name string) []*modFunc {
	var out []*modFunc
	for _, named := range m.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		if mf := m.lookupMethod(named, name); mf != nil {
			out = append(out, mf)
		}
	}
	return out
}

func (m *Module) lookupMethod(named *types.Named, name string) *modFunc {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	if fn, ok := obj.(*types.Func); ok {
		return m.funcs[fn]
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// pkgOfPos maps a position back to the package whose files contain it,
// so module-wide analyzers can report each finding from exactly one
// per-package pass.
func (m *Module) pkgOfPos(pos token.Pos) *Package {
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return pkg
			}
		}
	}
	return nil
}

// typeIDFor renders the stable type-level identity of a lock
// expression: "pkg.Type.field" for struct fields, "pkg.Func.name" for
// locals, "pkg.name" for package-level vars. Instances of one type
// share an ID — lock ordering is a property of the type graph.
func typeIDFor(pkg *Package, lockExpr ast.Expr) string {
	lockExpr = ast.Unparen(lockExpr)
	if sel, ok := lockExpr.(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			if named := namedOf(s.Recv()); named != nil {
				return pkgName(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		// Package-qualified var: pkgname.Mu.
		if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil {
			return pkgName(v.Pkg()) + "." + v.Name()
		}
	}
	if id, ok := lockExpr.(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgName(v.Pkg()) + "." + v.Name()
			}
			// Function-local mutex: qualify by the enclosing function.
			if fn := enclosingFuncName(pkg, id.Pos()); fn != "" {
				return pkgName(v.Pkg()) + "." + fn + "." + v.Name()
			}
			return pkgName(v.Pkg()) + "." + v.Name()
		}
	}
	return ""
}

func pkgName(p *types.Package) string {
	if p == nil {
		return "?"
	}
	return p.Name()
}

// enclosingFuncName finds the function declaration containing pos.
func enclosingFuncName(pkg *Package, pos token.Pos) string {
	for _, f := range pkg.Files {
		if !(f.FileStart <= pos && pos < f.FileEnd) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Pos() <= pos && pos <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// renderPath renders an ident/selector chain ("s.h.mu"); "" when the
// expression is not a plain chain (map index, call result, ...).
func renderPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// rootObjOf resolves the leftmost identifier of a chain to its object.
func rootObjOf(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pkg.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
