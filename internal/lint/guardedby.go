package lint

import (
	"go/ast"
	"go/types"
)

// guardedby enforces the `// guarded by <field>` annotation convention:
// a struct field annotated
//
//	table Table // guarded by mu
//
// may only be read while the *same instance's* mu is held (R or W
// mode) and only written under the write lock. Lock identity is
// per-instance — `other.writes` under `other.mu` is fine, under `h.mu`
// it is not. Accesses on freshly constructed, not-yet-shared values
// (the base was assigned from a composite literal or new() in the same
// function) are exempt: constructors initialize without locking.
// Closure bodies are skipped — the lockset a closure runs under is the
// caller's at call time, which this engine does not model.
//
// The annotation itself is validated: the named guard must be a
// sync.Mutex or sync.RWMutex field of the same struct.

// NewGuardedBy returns the guardedby analyzer.
func NewGuardedBy() *Analyzer {
	return &Analyzer{
		Name:        "guardedby",
		Doc:         "fields annotated `// guarded by <field>` must only be accessed with that lock held",
		NeedsModule: true,
		Run:         runGuardedBy,
	}
}

func runGuardedBy(pass *Pass) {
	m := pass.Module
	if m == nil {
		return
	}
	// Validate annotations declared in this package.
	for _, spec := range m.GuardedFields() {
		if spec.pkg != pass.pkg {
			continue
		}
		if kind := guardFieldKind(spec.owner, spec.guard); kind == gbGuardNone {
			owner := "?"
			if spec.owner != nil {
				owner = spec.owner.Obj().Name()
			}
			pass.Reportf(spec.pos, "guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex field of %s", spec.guard, owner)
		}
	}

	res := m.LockAnalysis()
	for _, fa := range res.order {
		if fa.fn.pkg != pass.pkg || fa.imprecise {
			continue
		}
		fresh := freshLocals(pass, fa.fn.decl)
		for _, acc := range fa.accesses {
			checkAccess(pass, acc, fresh)
		}
	}
}

type gbGuardKind int

const (
	gbGuardNone gbGuardKind = iota
	gbGuardMutex
	gbGuardRWMutex
)

// guardFieldKind looks up the guard field on the owning struct and
// classifies its type.
func guardFieldKind(owner *types.Named, name string) gbGuardKind {
	if owner == nil {
		return gbGuardNone
	}
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return gbGuardNone
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		named := namedOf(f.Type())
		if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
			return gbGuardNone
		}
		switch named.Obj().Name() {
		case "Mutex":
			return gbGuardMutex
		case "RWMutex":
			return gbGuardRWMutex
		}
		return gbGuardNone
	}
	return gbGuardNone
}

// freshLocals collects local variables assigned from a composite
// literal or new() anywhere in the function — values under
// construction that no other goroutine can reach yet.
func freshLocals(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	if decl == nil || decl.Body == nil {
		return fresh
	}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if !isFreshExpr(rhs) {
			return
		}
		if obj := pass.Info.ObjectOf(id); obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: &T{...},
// T{...}, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

func checkAccess(pass *Pass, acc accessEvent, fresh map[types.Object]bool) {
	basePath := renderPath(acc.baseExpr)
	if basePath == "" {
		// Base reached through an index or call result: beyond the
		// engine's per-instance identity; skip rather than guess.
		return
	}
	baseRoot := rootObjOf(acc.pkg, acc.baseExpr)
	if baseRoot != nil && fresh[baseRoot] {
		return
	}
	wantPath := basePath + "." + acc.spec.guard
	var held *heldLock
	for i := range acc.held {
		h := &acc.held[i]
		if h.path == wantPath && h.root == baseRoot {
			held = h
			break
		}
	}
	fieldDesc := acc.spec.field.Name()
	if acc.spec.owner != nil {
		fieldDesc = acc.spec.owner.Obj().Name() + "." + fieldDesc
	}
	if held == nil {
		verb := "read"
		if acc.write {
			verb = "write to"
		}
		pass.Reportf(acc.pos, "%s %s (guarded by %s) without holding %s", verb, fieldDesc, acc.spec.guard, wantPath)
		return
	}
	if acc.write && held.rlock {
		pass.Reportf(acc.pos, "write to %s (guarded by %s) while holding only the read lock %s", fieldDesc, acc.spec.guard, wantPath)
	}
}
