package lint

import (
	"go/ast"
	"go/types"
)

// mapOrderSinkNames are callee base names treated as order-sensitive: a
// call to one of these inside a range-over-map body means Go's randomized
// iteration order leaks into a hash, the flight-recorder journal, a
// serialized byte stream, or the device write sequence the crash checker
// indexes by.
var mapOrderSinkNames = map[string]bool{
	// hashing
	"Sum": true, "Sum32": true, "Sum64": true,
	// byte-stream / device output
	"Write": true, "WriteAt": true, "WriteString": true, "WriteByte": true, "WriteTo": true,
	// serialization
	"Marshal": true, "MarshalIndent": true, "Encode": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	// flight-recorder records
	"Op": true, "Meta": true, "Backtrack": true, "Record": true,
}

// NewMapOrder builds the maporder analyzer.
//
// Go randomizes map iteration order per run; any map range whose body
// feeds an order-sensitive sink makes the produced bytes — and therefore
// state hashes, journal records, and crash-point write indexes — differ
// between a recording and its replay. This is the exact class of the
// extfs journal-replay flake: per-inode journal copies of a shared
// inode-table block were emitted in map order.
//
// Three sink shapes are recognized inside a map-range body:
//
//   - a call whose name is an order-sensitive sink (Write, Sum, Encode,
//     journal record methods, ...);
//   - an append to a slice (or to a field of a variable) declared outside
//     the loop — order-sensitive unless the slice is sorted after the
//     loop, which is the accepted collect-then-sort idiom and is not
//     reported;
//   - a call to a local closure that appends to an outer slice (the
//     fsck-style report(...) helper).
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "map iteration order must not feed hashes, the journal, serialization, " +
			"device writes, or unsorted slice appends",
	}
	a.Run = func(pass *Pass) { runMapOrder(pass) }
	return a
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncMapOrder(pass, fn)
		}
	}
}

func checkFuncMapOrder(pass *Pass, fn *ast.FuncDecl) {
	appenders := collectAppenderClosures(pass, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rs, appenders)
		return true
	})
}

// collectAppenderClosures finds `name := func(...) {...}` declarations
// whose body appends to a variable declared outside the closure, mapping
// the closure's object to the appended slice's object.
func collectAppenderClosures(pass *Pass, fn *ast.FuncDecl) map[types.Object]types.Object {
	out := map[types.Object]types.Object{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := assign.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		closureObj := pass.Info.ObjectOf(id)
		if closureObj == nil {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if target := appendTarget(pass, n); target != nil {
				if target.Pos() < lit.Pos() || target.Pos() > lit.End() {
					out[closureObj] = target
				}
			}
			return true
		})
		return true
	})
	return out
}

// appendTarget returns the object a statement appends into, for the shape
// `x = append(x, ...)` or `x.f = append(x.f, ...)` (the base variable x is
// returned). Nil when n is not such an append.
func appendTarget(pass *Pass, n ast.Node) types.Object {
	assign, ok := n.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return nil
	}
	switch lhs := assign.Lhs[0].(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(lhs)
	case *ast.SelectorExpr:
		if base, ok := lhs.X.(*ast.Ident); ok {
			return pass.Info.ObjectOf(base)
		}
	}
	// Appends into a map bucket (m[k] = append(m[k], v)) are keyed, not
	// ordered — not a sink.
	return nil
}

func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, appenders map[types.Object]types.Object) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Order-sensitive append: collect-then-sort is fine, collect
		// without sort is not.
		if target := appendTarget(pass, n); target != nil {
			if target.Pos() < rs.Pos() && !sortedAfter(pass, fn, rs, target) {
				pass.Reportf(n.Pos(),
					"append to %q inside range over map: element order follows map iteration order (sort %q after the loop, or iterate sorted keys)",
					target.Name(), target.Name())
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Closure that appends to an outer slice.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				if target, isAppender := appenders[obj]; isAppender {
					if !sortedAfter(pass, fn, rs, target) {
						pass.Reportf(call.Pos(),
							"call to %q inside range over map appends to %q: order follows map iteration order",
							id.Name, target.Name())
					}
					return true
				}
			}
		}
		// Named order-sensitive sink.
		if name, ok := calleeName(call); ok && mapOrderSinkNames[name] {
			pass.Reportf(call.Pos(),
				"%s called inside range over map: the produced sequence follows map iteration order (iterate sorted keys instead)",
				name)
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}

// sortedAfter reports whether the slice object is handed to a sort-shaped
// call after the range statement ends — the collect-then-sort idiom.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, slice types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !sortShaped(call) {
			return true
		}
		if callMentions(pass, call, slice) {
			found = true
		}
		return !found
	})
	return found
}

// sortShaped recognizes sort.X / slices.SortX calls and any callee whose
// name contains "sort" (sortByState and friends).
func sortShaped(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok && (base.Name == "sort" || base.Name == "slices") {
			return true
		}
		return containsFold(fun.Sel.Name, "sort")
	case *ast.Ident:
		return containsFold(fun.Name, "sort")
	}
	return false
}

// callMentions reports whether the call's receiver or arguments reference
// the given object.
func callMentions(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
