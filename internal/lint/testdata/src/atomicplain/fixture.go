// Package atomicplain seeds the mixed atomic/plain access hazard: once
// any code touches a field through sync/atomic, every plain access of
// that field anywhere in the module is a data race. The element-atomic
// slice shape (a bitstate table's words) permits header-only uses —
// len/cap and whole-slice assignment in a constructor — but not plain
// indexing.
package atomicplain

import "sync/atomic"

type Counter struct {
	hits  int64    // field-atomic: &c.hits reaches atomic.AddInt64
	words []uint64 // element-atomic: &c.words[i] reaches atomic.LoadUint64
	cold  int64    // never touched atomically; plain access is fine
}

func NewCounter(n int) *Counter {
	c := &Counter{}
	c.words = make([]uint64, n) // whole-slice assignment: allowed
	return c
}

func (c *Counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Test(i int) bool {
	w := i / 64
	if w >= len(c.words) { // len of the slice header: allowed
		return false
	}
	return atomic.LoadUint64(&c.words[w])&(1<<(i%64)) != 0
}

func (c *Counter) Set(i int) {
	atomic.OrUint64(&c.words[i/64], 1<<(i%64))
}

// Snapshot reads the counter without atomic: the classic
// Histogram.Sum hazard.
func (c *Counter) Snapshot() int64 {
	return c.hits // want "field hits is accessed atomically at fixture.go:24; this plain access races with it"
}

// Reset writes it plainly, which is just as racy.
func (c *Counter) Reset() {
	c.hits = 0 // want "field hits is accessed atomically at fixture.go:24; this plain access races with it"
}

// PeekWord indexes the element-atomic slice plainly.
func (c *Counter) PeekWord(w int) uint64 {
	return c.words[w] // want "field words is indexed atomically at fixture.go:32; this plain access races with it"
}

func (c *Counter) Cold() int64 {
	c.cold++
	return c.cold
}
