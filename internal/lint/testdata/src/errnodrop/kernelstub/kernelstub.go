// Package kernelstub stands in for the module's kernel/vfs surface: its
// import path is listed in the fixture's ErrorCallPkgPrefixes, and its
// Errno type is lifecycle-checked wherever it appears.
package kernelstub

// Errno is the domain's error number type.
type Errno int

// OK is success.
const OK Errno = 0

// Close releases a descriptor.
func Close(fd int) Errno { return OK }

// Flush reports failure through a plain error.
func Flush() error { return nil }

// Count returns a plain value; dropping it is harmless.
func Count() int { return 0 }
