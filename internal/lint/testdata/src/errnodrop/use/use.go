// Fixture for the errnodrop analyzer: expression statements discarding
// Errno or error results of kernel-surface calls.
package use

import (
	"fmt"

	"kernelstub"
)

type device struct{}

// Sync is declared outside the configured prefixes, but returns an
// Errno: Errno results are checked wherever the callee lives.
func (device) Sync() kernelstub.Errno { return kernelstub.OK }

func drops(d device) {
	kernelstub.Close(3) // want "result of Close \(kernelstub.Errno\) is discarded"
	kernelstub.Flush()  // want "result of Flush \(error\) is discarded"
	d.Sync()            // want "result of Sync \(kernelstub.Errno\) is discarded"

	kernelstub.Count()      // plain int result: not a verification signal
	fmt.Println("x")        // error result, but fmt is outside the configured prefixes
	_ = kernelstub.Close(3) // explicit discard is visible and greppable
	defer kernelstub.Flush()

	if e := kernelstub.Close(3); e != kernelstub.OK {
		return
	}
}
