// Suppression behavior: a justified lint:ignore covers its own line and
// the line below it; an ignore without a reason is inert.
package walltime

import "time"

func allowedFallback() time.Duration {
	//lint:ignore walltime fixture documents a deliberate wall-clock fallback
	start := time.Now()
	return time.Since(start) // want "time.Since reads the wall clock"
}

func unjustified() time.Time {
	//lint:ignore walltime
	return time.Now() // want "time.Now reads the wall clock"
}

func wildcard() time.Time {
	return time.Now() //lint:ignore all fixture demonstrates the wildcard
}
