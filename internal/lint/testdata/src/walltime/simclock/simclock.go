// Package simclock stands in for the allowlisted virtual-clock package:
// the one place allowed to read the wall clock.
package simclock

import "time"

// Epoch reads the wall clock; this package owns the time base.
func Epoch() time.Time { return time.Now() }
