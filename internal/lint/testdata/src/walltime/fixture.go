// Fixture for the walltime analyzer: wall-clock reads and unseeded
// randomness outside the allowlisted simulation-clock package.
package walltime

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func epoch() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func pick(n int) int {
	return rand.Intn(n) // want "use of rand.Intn"
}
