// Package guardedby seeds every way the `// guarded by <field>`
// convention can be violated: access with no lock, write under the
// read lock, the wrong instance's lock, an early-return path that
// drops the lock before a late access, and an annotation naming a
// non-mutex guard. Clean shapes — defer-unlock, RLock reads,
// constructor initialization of a fresh value, helpers whose callers
// all hold the lock — must stay silent.
package guardedby

import "sync"

type Counter struct {
	mu sync.RWMutex
	// count is the flow-sensitive analyzer's bread and butter.
	count int // guarded by mu
	buf   []byte
	// bad's annotation names a field that is not a mutex.
	bad int // guarded by buf // want "annotation names \"buf\""
}

// Plain has no lock at all.
func (c *Counter) Plain() int {
	return c.count // want "read Counter.count \(guarded by mu\) without holding c.mu"
}

// WriteUnderRLock holds the wrong mode.
func (c *Counter) WriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.count++ // want "write to Counter.count \(guarded by mu\) while holding only the read lock"
}

// ReadUnderRLock is the intended read path.
func (c *Counter) ReadUnderRLock() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// WriteUnderLock is the intended write path (defer-unlock idiom).
func (c *Counter) WriteUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// EarlyDrop unlocks on the fast path, then touches the field anyway.
func (c *Counter) EarlyDrop(fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		c.count = 0 // want "write to Counter.count \(guarded by mu\) without holding c.mu"
		return
	}
	c.count++
	c.mu.Unlock()
}

// WrongInstance holds the receiver's lock but touches the other's
// field — lock identity is per-instance.
func (c *Counter) WrongInstance(other *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	other.count++ // want "write to Counter.count \(guarded by mu\) without holding other.mu"
}

// MergeOK locks the instance it reads.
func (c *Counter) MergeOK(other *Counter) {
	other.mu.RLock()
	n := other.count
	other.mu.RUnlock()
	c.mu.Lock()
	c.count += n
	c.mu.Unlock()
}

// bump relies on its callers: every call site holds c.mu, so the
// inferred entry lockset covers the access.
func (c *Counter) bump() {
	c.count++
}

func (c *Counter) BumpLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

func (c *Counter) BumpTwice() {
	c.mu.Lock()
	c.bump()
	c.bump()
	c.mu.Unlock()
}

// NewCounter initializes a fresh, not-yet-shared value: exempt.
func NewCounter(start int) *Counter {
	c := &Counter{}
	c.count = start
	return c
}
