// Package lockorder seeds a lock-order cycle modeled on the governor
// migration shape: a Governor that calls into its Table while holding
// g.mu, and a Table callback that re-enters the Governor while holding
// t.mu. Either order alone is fine; both together deadlock two
// goroutines that interleave.
package lockorder

import "sync"

type Governor struct {
	mu  sync.Mutex
	set *Table
}

type Table struct {
	mu  sync.Mutex
	gov *Governor
	n   int
}

// Maybe holds g.mu across the evict call — edge Governor.mu → Table.mu.
func (g *Governor) Maybe() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.set.evict() // want "acquiring lockorder.Table.mu while holding lockorder.Governor.mu completes a lock-order cycle"
}

func (t *Table) evict() {
	t.mu.Lock()
	t.n--
	t.mu.Unlock()
}

// Grow holds t.mu across the notify call — edge Table.mu → Governor.mu,
// closing the cycle.
func (t *Table) Grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	t.gov.notify() // want "acquiring lockorder.Governor.mu while holding lockorder.Table.mu completes a lock-order cycle"
}

func (g *Governor) notify() {
	g.mu.Lock()
	g.mu.Unlock()
}

// Relock re-acquires the very same instance: a guaranteed self-deadlock
// on Go's non-reentrant mutexes.
func (t *Table) Relock() {
	t.mu.Lock()
	t.mu.Lock() // want "re-acquiring lockorder.Table.mu while already holding it deadlocks"
	t.mu.Unlock()
	t.mu.Unlock()
}

// CloseThenCall releases its own lock before re-entering the peer —
// the stream.Subscriber.Close shape. Flow-sensitivity means this
// contributes no Table.mu → Governor.mu edge beyond Grow's.
type Peer struct {
	mu   sync.Mutex
	done bool
}

func (p *Peer) Close(g *Governor) {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
	// Lockset is empty here: no Peer.mu → Governor.mu edge, so Peer.mu
	// is not part of any cycle and this call is not a finding.
	g.notify()
}
