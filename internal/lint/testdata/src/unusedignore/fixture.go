// Package unusedignore seeds the stale-suppression bug class: a
// justified //lint:ignore that suppresses a real finding is fine, but
// one whose analyzer reports nothing on its lines has outlived the
// code it excused and is itself a finding. Reason-less directives stay
// inert (they never suppressed anything, so they are not "unused").
package unusedignore

import "time"

// A used suppression: walltime would flag time.Now here.
//
//lint:ignore walltime this fixture exercises a justified suppression
var now = time.Now()

// A stale suppression: nothing on this line trips walltime anymore.
//
//lint:ignore walltime the wall-clock call below was removed long ago // want "unused lint:ignore directive: no walltime finding on this line"
var epoch = int64(0)

// A stale wildcard is reported the same way.
//
//lint:ignore all nothing here needs suppressing // want "unused lint:ignore directive: no finding on this line"
var zero = 0

// A directive for an analyzer that is not running is out of scope, not
// stale — golden runs use analyzer subsets.
//
//lint:ignore maporder this analyzer is not part of this golden run
var one = 1

//lint:ignore
var reasonless = time.Now() // want "reads the wall clock"
