// Fixture for the checkpointleak analyzer. A Tracker here has the full
// Checkpoint/Restore/Discard method set, so keys passed to Checkpoint
// are lifecycle-tracked; saverOnly lacks Discard and is exempt.
package checkpointleak

type Tracker struct{ n int }

func (t *Tracker) Checkpoint(key uint64) error { t.n++; return nil }
func (t *Tracker) Restore(key uint64) error    { t.n--; return nil }
func (t *Tracker) Discard(key uint64)          { t.n-- }

var bad bool

func errOops() error { return nil }

// Leaky saves a checkpoint and forgets it on the early-exit path — the
// snapshot pool grows by one abandoned image per call.
func Leaky(t *Tracker, key uint64) error {
	_ = t.Checkpoint(key)
	if bad {
		return errOops() // want "checkpoint key \"key\" .* can leak"
	}
	return t.Restore(key)
}

// LeakyLoop is the partial-checkpoint shape: when a later tracker fails,
// earlier iterations have already saved images under key.
func LeakyLoop(ts []*Tracker, key uint64) error {
	for _, t := range ts {
		if err := t.Checkpoint(key); err != nil {
			return err // want "can leak"
		}
	}
	for _, t := range ts {
		_ = t.Restore(key)
	}
	return nil
}

// CleanLoop releases the already-saved images before the early return.
func CleanLoop(ts []*Tracker, key uint64) error {
	var saved []*Tracker
	for _, t := range ts {
		if err := t.Checkpoint(key); err != nil {
			for _, s := range saved {
				s.Discard(key)
			}
			return err
		}
		saved = append(saved, t)
	}
	for _, t := range ts {
		_ = t.Restore(key)
	}
	return nil
}

// DeferredDiscard releases through a deferred closure — key uses inside
// nested function literals count as consumption.
func DeferredDiscard(t *Tracker, key uint64) error {
	_ = t.Checkpoint(key)
	defer func() { t.Discard(key) }()
	if bad {
		return errOops()
	}
	return nil
}

// RestoreInReturn consumes in the return expression itself: the return
// is ordered after its own children.
func RestoreInReturn(t *Tracker, key uint64) error {
	_ = t.Checkpoint(key)
	return t.Restore(key)
}

// ForgottenEntirely never consumes the key; falling off the end of the
// body is a return path too.
func ForgottenEntirely(t *Tracker, key uint64) {
	_ = t.Checkpoint(key)
} // want "can leak"

type saverOnly struct{}

func (saverOnly) Checkpoint(key uint64) {}
func (saverOnly) Restore(key uint64)    {}

// NotTracked: the receiver lacks Discard, so its keys have no
// release obligation.
func NotTracked(s saverOnly, key uint64) {
	s.Checkpoint(key)
}

type chain struct{ inner *Tracker }

// Restore delegates the same key inward; functions named
// Checkpoint/Restore/Discard are the implementations, not call sites
// that own key lifecycles.
func (c *chain) Restore(key uint64) error {
	_ = c.inner.Checkpoint(key)
	return nil
}
