// Package lockbalance seeds the missing-Unlock bug classes: an early
// return that skips the release, a closure that acquires and never
// releases, and an unlock with no matching lock. Balanced shapes —
// defer-based release, panic paths, loop-body lock/unlock, deferred
// closure release — must stay clean.
package lockbalance

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// EarlyReturn skips the Unlock on the b path — the bug class this
// analyzer exists for.
func (s *S) EarlyReturn(b bool) {
	s.mu.Lock()
	if b {
		return // want "returns still holding s.mu"
	}
	s.n++
	s.mu.Unlock()
}

// DeferOK releases via defer on every path.
func (s *S) DeferOK(b bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b {
		return
	}
	s.n++
}

// PanicOK: panicking paths run deferred unlocks during the unwind and
// are exempt even without a defer — the lock dies with the goroutine.
func (s *S) PanicOK(b bool) {
	s.mu.Lock()
	if b {
		panic("giving up")
	}
	s.mu.Unlock()
}

// LoopOK locks and unlocks per iteration.
func (s *S) LoopOK(xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// DeferClosureOK releases through a deferred closure.
func (s *S) DeferClosureOK() {
	s.mu.Lock()
	defer func() {
		s.n = 0
		s.mu.Unlock()
	}()
	s.n++
}

// LeakyClosure is checked standalone: it acquires and returns holding.
func (s *S) LeakyClosure() func() {
	return func() {
		s.mu.Lock()
		s.n++
	} // want "returns still holding s.mu"
}

// ReleaseOnlyClosure unlocks a captured lock: closures are not blamed
// for negative balance (the matching Lock is the caller's).
func (s *S) ReleaseOnlyClosure() func() {
	return func() {
		s.mu.Unlock()
	}
}

// DoubleUnlock releases a lock it never took.
func (s *S) DoubleUnlock() {
	s.mu.Unlock() // want "unlocking s.mu, which is not held"
}

// handoff releases a lock every caller holds at entry (inferred from
// the call sites below): asymmetric lock handling is a finding.
func (s *S) handoff() {
	s.n++
	s.mu.Unlock()
	return // want "returns after releasing s.mu, which callers hold across this call"
}

// The callers are flagged too: the engine does not model the callee's
// release, so from the caller's side the lock looks leaked — the pair
// of findings points at both halves of the asymmetric pattern.
func (s *S) UseHandoff() {
	s.mu.Lock()
	s.handoff()
} // want "returns still holding s.mu"

func (s *S) UseHandoffAgain() {
	s.mu.Lock()
	s.handoff()
} // want "returns still holding s.mu"
