// Fixture for the maporder analyzer: order-sensitive sinks inside
// range-over-map bodies, and the accepted collect-then-sort idioms.
package maporder

import (
	"fmt"
	"sort"
)

type hashStub struct{}

func (hashStub) Write(p []byte) {}

type journalStub struct{}

func (journalStub) Record(s string) {}

// hashLeak feeds map iteration order straight into a hash.
func hashLeak(m map[string]int) {
	var h hashStub
	for k := range m {
		h.Write([]byte(k)) // want "Write called inside range over map"
	}
}

// journalLeak emits journal records in map order — the PR 3 flake class:
// a recording and its replay journal the same state in different orders.
func journalLeak(m map[string]int, j journalStub) {
	for k := range m {
		j.Record(k) // want "Record called inside range over map"
	}
}

// appendLeak collects into a slice that is never sorted.
func appendLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over map"
	}
	return keys
}

// collectThenSort is the accepted idiom: the order is repaired after the
// loop, before anything observes it.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bucketAppend appends into map buckets — keyed, not ordered.
func bucketAppend(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		for _, v := range vs {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// reportPattern calls a local closure that appends to an outer slice —
// the fsck-style report(...) helper.
func reportPattern(m map[uint32]int) []string {
	var problems []string
	report := func(f string, args ...any) {
		problems = append(problems, fmt.Sprintf(f, args...))
	}
	for blk, n := range m {
		if n > 1 {
			report("block %d referenced %d times", blk, n) // want "call to \"report\" inside range over map appends to \"problems\""
		}
	}
	return problems
}

// sliceRange ranges over a slice, not a map: ordered by construction.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
