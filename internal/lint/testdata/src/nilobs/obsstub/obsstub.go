// Fixture for the nilobs analyzer: exported pointer-receiver methods on
// the configured Hub type must guard the receiver before dereferencing.
package obsstub

import "sync"

// Hub mimics the observability hub: documented safe on a nil receiver.
type Hub struct {
	mu       sync.Mutex
	counters map[string]int64
}

// Guarded is the documented pattern: nil check first, then dereference.
func (h *Hub) Guarded(name string) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counters[name]
}

// OrGuard guards through the leftmost operand of an || chain.
func (h *Hub) OrGuard(name string) int64 {
	if h == nil || name == "" {
		return 0
	}
	return h.counters[name]
}

// Inverted keeps every dereference inside an != nil block.
func (h *Hub) Inverted(name string) {
	if h != nil {
		h.counters[name]++
	}
}

// Unguarded dereferences the receiver before any nil check.
func (h *Hub) Unguarded(name string) int64 {
	v := h.counters[name] // want "dereferences its receiver before a nil guard"
	return v
}

// Delegates may call sibling methods before guarding; each callee is
// verified on its own.
func (h *Hub) Delegates(name string) int64 {
	return h.Guarded(name)
}

// unexported methods are internal plumbing reached only through guarded
// entry points; they are not checked.
func (h *Hub) bump(name string) {
	h.counters[name]++
}

type sidecar struct{ n int }

// NotATarget is on a type outside the configured target list.
func (s *sidecar) NotATarget() int { return s.n }
