// The runtime twin of the atomicplain fixture: the same mixed
// atomic/plain access pattern the analyzer flags statically, arranged
// so the Go race detector provably catches it at runtime — evidence
// the invariant is a real race, not a style preference. The
// racetwin_test in internal/lint runs this under `go run -race` and
// asserts a DATA RACE report, and runs atomicplain over this tree and
// asserts the static finding, so the two verdicts can never drift
// apart silently.
package main

import (
	"fmt"
	"sync/atomic"
)

type counter struct {
	hits int64
}

func main() {
	c := &counter{}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			atomic.AddInt64(&c.hits, 1)
		}
		close(done)
	}()
	// Plain-read the field until the atomic writer finishes: the two
	// accesses are unordered, so the race detector must flag the pair.
	var last int64
	for {
		select {
		case <-done:
			fmt.Println("last observed:", last, "final:", atomic.LoadInt64(&c.hits))
			return
		default:
			last = c.hits // want "field hits is accessed atomically at main.go:25; this plain access races with it"
		}
	}
}
