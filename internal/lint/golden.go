package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// want is one golden expectation: the diagnostic on file:line must match rx.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckGolden loads the fixture tree rooted at dir (packages keyed by
// their directory-relative import paths), runs the analyzers, and
// compares the diagnostics against `// want "regexp"` comments: every
// diagnostic must match an expectation on its line, and every expectation
// must be matched by exactly one diagnostic. It returns a list of
// mismatch descriptions, empty on success.
func CheckGolden(dir string, analyzers ...*Analyzer) ([]string, error) {
	pkgs, err := LoadTree(dir, "")
	if err != nil {
		return nil, err
	}
	diags := Run(pkgs, analyzers)

	var wants []want
	for _, pkg := range pkgs {
		ws, err := collectWants(pkg.Fset, pkg.Dir)
		if err != nil {
			return nil, err
		}
		wants = append(wants, ws...)
	}

	var problems []string
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for i, w := range wants {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// collectWants scans every .go file in the package directory for
// `// want "rx"` comments. Multiple quoted patterns on one comment give
// multiple expectations for that line.
func collectWants(fset *token.FileSet, dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment (no quoted pattern)", path, i+1)
			}
			for _, a := range args {
				rx, err := regexp.Compile(strings.ReplaceAll(a[1], `\"`, `"`))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, i+1, err)
				}
				wants = append(wants, want{file: path, line: i + 1, rx: rx})
			}
		}
	}
	return wants, nil
}
