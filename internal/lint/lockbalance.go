package lint

import (
	"go/ast"
)

// lockbalance proves that every path through a function leaves the
// lockset exactly as it entered — the concurrency analogue of
// checkpointleak's restore-or-discard pairing. An early return between
// Lock and Unlock (without a defer) is the classic bug this catches; a
// release of a lock the caller was holding at entry (inferred from
// call sites) is the inverse. Paths that end in panic() are exempt:
// deferred unlocks run during the unwind.
//
// Function literals are checked standalone with an empty entry
// lockset: a closure that acquires and returns still holding is
// reported, but an unlock of a captured lock (deferred-release
// closures, hand-off helpers) is not an imbalance the closure can be
// blamed for, so negative balance inside literals is ignored.

// NewLockBalance returns the lockbalance analyzer.
func NewLockBalance() *Analyzer {
	return &Analyzer{
		Name:        "lockbalance",
		Doc:         "every path through a function must leave the lockset as it entered",
		NeedsModule: true,
		Run:         runLockBalance,
	}
}

func runLockBalance(pass *Pass) {
	m := pass.Module
	if m == nil {
		return
	}
	res := m.LockAnalysis()
	for _, fa := range res.order {
		if fa.fn.pkg != pass.pkg || fa.imprecise {
			continue
		}
		reportImbalance(pass, fa, false)
	}
	// Function literals, each analyzed standalone.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			fa := m.analyzeLit(pass.pkg, lit)
			if !fa.imprecise {
				reportImbalance(pass, fa, true)
			}
			return true // nested literals are analyzed on their own too
		})
	}
}

// reportImbalance compares each exit's lockset against the entry set.
// inLit suppresses negative findings (released-but-not-acquired), which
// a closure cannot be blamed for.
func reportImbalance(pass *Pass, fa *funcAnalysis, inLit bool) {
	for _, ex := range fa.exits {
		// Locks held at exit that were not held at entry.
		for _, h := range ex.held {
			if _, atEntry := fa.entry.find(h.instKey()); atEntry {
				continue
			}
			pass.Reportf(ex.pos, "returns still holding %s (acquired at line %d) — missing Unlock on this path",
				h.path, pass.Fset.Position(h.pos).Line)
		}
		if inLit {
			continue
		}
		// Entry-held locks released before exit.
		for _, h := range fa.entry {
			if _, still := ex.held.find(h.instKey()); still {
				continue
			}
			pass.Reportf(ex.pos, "returns after releasing %s, which callers hold across this call", h.path)
		}
	}
	if !inLit {
		for _, f := range fa.unlockErr {
			pass.Reportf(f.pos, "unlocking %s, which is not held on some path reaching this statement", f.path)
		}
	}
}

// analyzeLit runs the lockset walk over one function literal with an
// empty entry lockset.
func (m *Module) analyzeLit(pkg *Package, lit *ast.FuncLit) *funcAnalysis {
	mf := &modFunc{pkg: pkg, cfg: buildCFG(lit.Body), decl: &ast.FuncDecl{Name: ast.NewIdent("func literal"), Body: lit.Body}}
	return m.analyzeFunc(mf, nil)
}
