package lint

import (
	"go/ast"
	"strings"
)

// WalltimeConfig configures the walltime analyzer.
type WalltimeConfig struct {
	// AllowPkgs lists package import paths exempt from the check (the
	// simulation clock itself, which owns the virtual time base).
	AllowPkgs []string
}

// NewWalltime builds the walltime analyzer.
//
// Journal replay is only deterministic if every recorded quantity derives
// from the session's virtual clock and seeded choices. A time.Now or
// time.Since call — or any use of math/rand's global, unseeded state —
// injects wall-clock entropy that differs between a recording and its
// replay. All simulated time must flow through internal/simclock, and all
// randomness through the engine's seeded shuffles.
func NewWalltime(cfg WalltimeConfig) *Analyzer {
	a := &Analyzer{
		Name: "walltime",
		Doc: "time.Now/time.Since and math/rand are forbidden outside internal/simclock: " +
			"wall-clock reads and unseeded randomness break replay determinism",
	}
	a.Run = func(pass *Pass) { runWalltime(pass, cfg) }
	return a
}

func runWalltime(pass *Pass, cfg WalltimeConfig) {
	for _, allow := range cfg.AllowPkgs {
		if pass.Pkg.Path() == allow {
			return
		}
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: unseeded randomness breaks replay determinism (derive choices from the engine's seeded shuffle)",
					path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if id.Name == "Now" || id.Name == "Since" {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock: route timing through internal/simclock so replay stays deterministic",
						id.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(id.Pos(),
					"use of %s.%s: unseeded randomness breaks replay determinism",
					obj.Pkg().Name(), id.Name)
			}
			return true
		})
	}
}
