package lint

import (
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the module-global lock-acquisition order graph and
// reports every edge that participates in a cycle — the static shape of
// a potential deadlock. Nodes are type-level lock identities
// ("visited.Set.mu"): if any code path acquires B while holding A, the
// graph has edge A→B, both from direct acquisitions and from calls
// made while holding A to functions that (transitively) acquire B. Two
// locks of the same type (different instances) never form an edge —
// shard-style same-type locking is ordered by index, which this
// analyzer cannot see — but re-acquiring the very same instance is a
// self-cycle and is reported.
//
// Flow-sensitivity matters here: a method that unlocks its own mutex
// before calling back into its parent (stream.Subscriber.Close →
// Bus.unsubscribe) contributes no edge, because the lockset at the
// call site is already empty.

// NewLockOrder returns the lockorder analyzer.
func NewLockOrder() *Analyzer {
	return &Analyzer{
		Name:        "lockorder",
		Doc:         "acquiring locks in a cycle-forming order is a potential deadlock",
		NeedsModule: true,
		Run:         runLockOrder,
	}
}

// orderEdge is one acquired-while-holding relation with its witness.
type orderEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	selfInst bool // same-instance re-acquire (always reported)
}

type orderGraph struct {
	edges []orderEdge
	// cyclic marks edges inside a cyclic strongly connected component.
	cyclic []bool
	// cycleDesc renders the SCC membership for each cyclic edge.
	cycleDesc []string
}

func runLockOrder(pass *Pass) {
	m := pass.Module
	if m == nil {
		return
	}
	g := m.lockOrderGraph()
	for i, e := range g.edges {
		if !g.cyclic[i] {
			continue
		}
		if e.pkg != pass.pkg {
			continue
		}
		if e.selfInst {
			pass.Reportf(e.pos, "re-acquiring %s while already holding it deadlocks (non-reentrant mutex)", e.to)
			continue
		}
		pass.Reportf(e.pos, "acquiring %s while holding %s completes a lock-order cycle (%s)", e.to, e.from, g.cycleDesc[i])
	}
}

// lockOrderGraph builds (and caches) the global order graph and its
// cycle classification.
func (m *Module) lockOrderGraph() *orderGraph {
	if m.orderGraph != nil {
		return m.orderGraph
	}
	res := m.LockAnalysis()

	// Collect edges with a deterministic minimal witness per (from,to).
	type edgeKey struct{ from, to string }
	best := map[edgeKey]orderEdge{}
	consider := func(e orderEdge) {
		k := edgeKey{e.from, e.to}
		if old, ok := best[k]; !ok || e.pos < old.pos {
			best[k] = e
		}
	}
	for _, fa := range res.order {
		if fa.imprecise {
			continue
		}
		for _, ev := range fa.acquires {
			if ev.lock.typeID == "" {
				continue
			}
			for _, h := range ev.held {
				if h.typeID == "" {
					continue
				}
				if h.typeID == ev.lock.typeID {
					if h.instKey() == ev.lock.instKey() && h.rlock == ev.lock.rlock {
						consider(orderEdge{from: h.typeID, to: ev.lock.typeID, pos: ev.lock.pos, pkg: ev.pkg, selfInst: true})
					}
					continue
				}
				consider(orderEdge{from: h.typeID, to: ev.lock.typeID, pos: ev.lock.pos, pkg: ev.pkg})
			}
		}
		for _, ce := range fa.calls {
			if len(ce.held) == 0 {
				continue
			}
			for _, callee := range ce.callees {
				acq := res.transAcquires[callee.obj]
				ids := make([]string, 0, len(acq))
				for id := range acq {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, id := range ids {
					for _, h := range ce.held {
						if h.typeID == "" || h.typeID == id {
							continue
						}
						consider(orderEdge{from: h.typeID, to: id, pos: ce.pos, pkg: ce.pkg})
					}
				}
			}
		}
	}

	keys := make([]edgeKey, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	g := &orderGraph{}
	for _, k := range keys {
		g.edges = append(g.edges, best[k])
	}

	scc := tarjanSCC(g.edges)
	g.cyclic = make([]bool, len(g.edges))
	g.cycleDesc = make([]string, len(g.edges))
	for i, e := range g.edges {
		if e.selfInst {
			g.cyclic[i] = true
			g.cycleDesc[i] = e.to + " -> " + e.to
			continue
		}
		compFrom, okF := scc.comp[e.from]
		compTo, okT := scc.comp[e.to]
		if !okF || !okT || compFrom != compTo {
			continue
		}
		members := scc.members[compFrom]
		if len(members) > 1 || e.from == e.to {
			g.cyclic[i] = true
			g.cycleDesc[i] = strings.Join(members, " -> ") + " -> " + members[0]
		}
	}
	m.orderGraph = g
	return g
}

// sccResult maps each node to its strongly connected component.
type sccResult struct {
	comp    map[string]int
	members map[int][]string // sorted
}

// tarjanSCC runs Tarjan's algorithm over the edge list (iteratively,
// with deterministic node order).
func tarjanSCC(edges []orderEdge) *sccResult {
	adj := map[string][]string{}
	nodeSet := map[string]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodeSet[e.from] = true
		nodeSet[e.to] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	res := &sccResult{comp: map[string]int{}, members: map[int][]string{}}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	nComp := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				res.comp[w] = nComp
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Strings(members)
			res.members[nComp] = members
			nComp++
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return res
}
