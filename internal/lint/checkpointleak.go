package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewCheckpointLeak builds the checkpointleak analyzer.
//
// The engine's backtracking contract: every checkpoint image saved under a
// key must be consumed by a Restore or released by a Discard — an abandoned
// key's images sit in the snapshot pools forever (the exact leak the swarm
// PR fixed on the engine's partial-checkpoint error path). The analyzer
// tracks every key passed to a Checkpoint method whose receiver also has
// Restore and Discard methods, and reports any return path reached before
// the key was handed to a restore/discard-shaped consumer.
//
// The analysis is a may-consume approximation over source order: once the
// key reaches a Restore/Discard call, a *discard*/*restore*-named helper,
// or escapes into other code (stored in a slice a deferred cleanup walks,
// formatted into an error, sent somewhere), later returns are trusted.
// Methods named Checkpoint/Restore/Discard themselves are exempt — they
// are the implementations being delegated to, not call sites that own
// key lifecycles.
func NewCheckpointLeak() *Analyzer {
	a := &Analyzer{
		Name: "checkpointleak",
		Doc: "checkpoint keys must reach Restore or Discard on every return path " +
			"of the function that created them",
	}
	a.Run = func(pass *Pass) { runCheckpointLeak(pass) }
	return a
}

func runCheckpointLeak(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			switch fn.Name.Name {
			case "Checkpoint", "Restore", "Discard":
				// Tracker implementations delegate the same key inward;
				// the key's lifecycle belongs to their caller.
				continue
			}
			checkFuncForLeaks(pass, fn)
		}
	}
}

// ckEvent is one lifecycle-relevant occurrence inside a function, in
// source order.
type ckEvent struct {
	pos  token.Pos // sort position
	at   token.Pos // report position
	kind int       // 0 checkpoint, 1 consume, 2 return
	obj  types.Object
}

func checkFuncForLeaks(pass *Pass, fn *ast.FuncDecl) {
	// First pass: find checkpoint calls and the key objects they save
	// under, remembering the exact argument idents so the second pass can
	// tell a checkpointing use from a consuming one.
	keyObjs := map[types.Object]bool{}
	checkpointArgs := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Checkpoint" {
			return true
		}
		if !hasRestoreAndDiscard(pass, sel.X) {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		keyObjs[obj] = true
		checkpointArgs[id] = true
		return true
	})
	if len(keyObjs) == 0 {
		return
	}

	// Second pass: collect checkpoint / consume / return events.
	var events []ckEvent
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Returns inside a nested closure do not leave the outer
				// function, but key uses inside it (a deferred discard
				// loop, say) still count as consumption.
				walk(n.Body, depth+1)
				return false
			case *ast.ReturnStmt:
				if depth == 0 {
					// Sort the return after its own children so a
					// consuming result expression (return t.Restore(key))
					// is seen first.
					events = append(events, ckEvent{pos: n.End(), at: n.Pos(), kind: 2})
				}
			case *ast.Ident:
				obj := pass.Info.ObjectOf(n)
				if obj == nil || !keyObjs[obj] {
					return true
				}
				if pass.Info.Defs[n] != nil {
					return true // the key's own declaration
				}
				kind := 1 // consume
				if checkpointArgs[n] {
					kind = 0
				}
				events = append(events, ckEvent{pos: n.Pos(), at: n.Pos(), kind: kind, obj: obj})
			}
			return true
		})
	}
	walk(fn.Body, 0)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// A function whose body can fall off the end returns there too.
	if stmts := fn.Body.List; len(stmts) == 0 || !terminates(stmts[len(stmts)-1]) {
		events = append(events, ckEvent{pos: fn.Body.Rbrace, at: fn.Body.Rbrace, kind: 2})
	}

	live := map[types.Object]token.Pos{}
	consumed := map[types.Object]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			if _, ok := live[ev.obj]; !ok {
				live[ev.obj] = ev.pos
			}
		case 1:
			if _, ok := live[ev.obj]; ok {
				consumed[ev.obj] = true
			}
		case 2:
			var leaked []types.Object
			for obj := range live {
				if !consumed[obj] {
					leaked = append(leaked, obj)
				}
			}
			sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
			for _, obj := range leaked {
				pass.Reportf(ev.at,
					"checkpoint key %q (saved at %s) can leak: no Restore or Discard reaches this return",
					obj.Name(), pass.Fset.Position(live[obj]))
			}
		}
	}
}

// hasRestoreAndDiscard reports whether the receiver expression's type has
// both Restore and Discard in its method set — the shape of a tracker (or
// any checkpoint/restore substrate) whose images need explicit release.
func hasRestoreAndDiscard(pass *Pass, recv ast.Expr) bool {
	t := pass.TypeOf(recv)
	if t == nil {
		return false
	}
	return hasMethod(t, "Restore") && hasMethod(t, "Discard")
}

func hasMethod(t types.Type, name string) bool {
	if lookupMethod(t, name) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return lookupMethod(types.NewPointer(t), name)
	}
	return false
}

func lookupMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// terminates reports whether a statement always transfers control out of
// the enclosing function: a return, a panic call, or a select/for with no
// way out. It is deliberately shallow — used only to decide whether a
// function body's closing brace is reachable.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		if s.Cond == nil && !hasBreak(s.Body) {
			return true
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break there binds to the inner statement
		}
		return !found
	})
	return found
}

// containsFold reports whether s contains substr, ASCII case-insensitively.
func containsFold(s, substr string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(substr))
}
