package lint

import (
	"path/filepath"
	"testing"
)

// runGolden runs the analyzers over one fixture tree and fails on any
// mismatch between diagnostics and `// want "rx"` expectations. Each
// fixture seeds the bug class its analyzer exists for, so reintroducing
// one (or weakening an analyzer below it) fails go test.
func runGolden(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckGolden(filepath.Join("testdata", "src", fixture), analyzers...)
	if err != nil {
		t.Fatalf("CheckGolden(%s): %v", fixture, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestCheckpointLeakGolden(t *testing.T) {
	runGolden(t, "checkpointleak", NewCheckpointLeak())
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", NewMapOrder())
}

func TestWalltimeGolden(t *testing.T) {
	// The fixture's simclock subpackage plays the allowlisted virtual
	// clock (import paths in a rootless fixture tree are dir-relative).
	runGolden(t, "walltime", NewWalltime(WalltimeConfig{AllowPkgs: []string{"simclock"}}))
}

func TestErrnoDropGolden(t *testing.T) {
	runGolden(t, "errnodrop", NewErrnoDrop(ErrnoDropConfig{
		ErrorCallPkgPrefixes: []string{"kernelstub"},
	}))
}

func TestNilObsGolden(t *testing.T) {
	runGolden(t, "nilobs", NewNilObs(NilObsConfig{
		Targets: map[string][]string{"obsstub": {"Hub"}},
	}))
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, "lockorder", NewLockOrder())
}

func TestGuardedByGolden(t *testing.T) {
	runGolden(t, "guardedby", NewGuardedBy())
}

func TestAtomicPlainGolden(t *testing.T) {
	runGolden(t, "atomicplain", NewAtomicPlain())
}

func TestLockBalanceGolden(t *testing.T) {
	runGolden(t, "lockbalance", NewLockBalance())
}

func TestUnusedIgnoreGolden(t *testing.T) {
	// The unusedignore check is framework-level: it runs inside Run for
	// whatever analyzer set is active. The fixture uses walltime as the
	// suppressed analyzer.
	runGolden(t, "unusedignore", NewWalltime(WalltimeConfig{}))
}
