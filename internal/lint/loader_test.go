package lint

import (
	"testing"
)

// TestTopoOrderDeterministic pins the loader's type-check order to a
// pure function of the (sorted) import structure. The call-graph layer
// made order load-bearing: object positions, entry-lockset inference
// and diagnostic output all flow from it, so it must never depend on
// map iteration. (The maporder analyzer is dogfooded on loader.go
// itself via TestModuleIsClean; this test checks the output, not just
// the idiom.)
func TestTopoOrderDeterministic(t *testing.T) {
	imports := map[string][]string{
		"m/a": {"m/b", "m/c"},
		"m/b": {"m/d"},
		"m/c": {"m/d"},
		"m/d": {},
		"m/e": {},
	}
	want := []string{"m/d", "m/b", "m/c", "m/a", "m/e"}
	// Rebuild the map each round so Go's randomized iteration seeding
	// would surface any hidden map-order dependence.
	for round := 0; round < 50; round++ {
		in := map[string][]string{}
		for k, v := range imports {
			in[k] = append([]string(nil), v...)
		}
		got, err := topoOrder(in)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: got %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: order %v, want %v", round, got, want)
			}
		}
	}
}

func TestTopoOrderRejectsCycle(t *testing.T) {
	_, err := topoOrder(map[string][]string{
		"m/a": {"m/b"},
		"m/b": {"m/a"},
	})
	if err == nil {
		t.Fatal("import cycle not rejected")
	}
}

// TestLoadTreeOrderStable loads the golden fixture tree twice and
// requires identical package order — the end-to-end form of the
// guarantee TestTopoOrderDeterministic checks in isolation.
func TestLoadTreeOrderStable(t *testing.T) {
	load := func() []string {
		// The errnodrop fixture is a multi-package tree (kernelstub +
		// its user), so the topo order actually has edges to get wrong.
		pkgs, err := LoadTree("testdata/src/errnodrop", "")
		if err != nil {
			t.Fatalf("LoadTree: %v", err)
		}
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		return paths
	}
	first := load()
	if len(first) == 0 {
		t.Fatal("fixture tree loaded no packages")
	}
	for round := 0; round < 3; round++ {
		again := load()
		if len(again) != len(first) {
			t.Fatalf("round %d: %v vs %v", round, again, first)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("round %d: order drifted: %v vs %v", round, again, first)
			}
		}
	}
}
