package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilObsConfig configures the nilobs analyzer.
type NilObsConfig struct {
	// Targets maps package import paths to the type names whose exported
	// pointer-receiver methods must be nil-receiver safe.
	Targets map[string][]string
}

// NewNilObs builds the nilobs analyzer.
//
// The observability layer's contract is that a component holding a nil
// *Hub (or any instrument resolved from one, or a nil journal *Recorder)
// pays one branch and nothing else — call sites are deliberately
// unguarded throughout the engine's hot path. A new method that touches a
// receiver field before checking for nil turns every uninstrumented run
// into a panic. The analyzer requires each exported pointer-receiver
// method on the configured types to either never dereference its
// receiver, or to guard first: `if r == nil { return ... }` (possibly
// `recv == nil || ...`), or the inverted `if r != nil { ... }` form with
// all dereferences inside. Calling the receiver's own methods is always
// allowed — those are verified independently.
func NewNilObs(cfg NilObsConfig) *Analyzer {
	a := &Analyzer{
		Name: "nilobs",
		Doc: "exported methods on obs hub/reporter/journal types must guard the " +
			"receiver against nil before dereferencing it",
	}
	a.Run = func(pass *Pass) { runNilObs(pass, cfg) }
	return a
}

func runNilObs(pass *Pass, cfg NilObsConfig) {
	typeNames := cfg.Targets[pass.Pkg.Path()]
	if len(typeNames) == 0 {
		return
	}
	targets := map[string]bool{}
	for _, n := range typeNames {
		targets[n] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvObj, typeName := pointerReceiver(pass, fn)
			if recvObj == nil || !targets[typeName] {
				continue
			}
			checkNilGuard(pass, fn, recvObj, typeName)
		}
	}
}

// pointerReceiver returns the receiver object and its base type name when
// fn has a named pointer receiver, else (nil, "").
func pointerReceiver(pass *Pass, fn *ast.FuncDecl) (types.Object, string) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, ""
	}
	name := fn.Recv.List[0].Names[0]
	obj := pass.Info.Defs[name]
	if obj == nil {
		return nil, ""
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil, ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

func checkNilGuard(pass *Pass, fn *ast.FuncDecl, recv types.Object, typeName string) {
	for _, stmt := range fn.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil {
			switch guardKind(pass, ifs.Cond, recv) {
			case guardEq:
				if blockTerminates(ifs.Body) {
					// Everything after `if r == nil { return }` may
					// dereference freely.
					return
				}
			case guardNeq:
				// `if r != nil { ... }`: dereferences inside are safe;
				// the receiver is still unproven afterwards, keep going.
				continue
			}
		}
		if pos, ok := firstReceiverDeref(pass, stmt, recv); ok {
			pass.Reportf(pos,
				"method (*%s).%s dereferences its receiver before a nil guard: %s is documented nil-safe",
				typeName, fn.Name.Name, typeName)
			return
		}
	}
}

type guard int

const (
	guardNone guard = iota
	guardEq         // recv == nil (possibly || more)
	guardNeq        // recv != nil (possibly && more)
)

// guardKind classifies an if condition whose leftmost short-circuit
// operand compares the receiver with nil.
func guardKind(pass *Pass, cond ast.Expr, recv types.Object) guard {
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return guardNone
		}
		switch bin.Op {
		case token.LOR, token.LAND:
			cond = bin.X // leftmost operand decides: it evaluates first
			continue
		case token.EQL, token.NEQ:
			if !isNilCompare(pass, bin, recv) {
				return guardNone
			}
			if bin.Op == token.EQL {
				return guardEq
			}
			return guardNeq
		default:
			return guardNone
		}
	}
}

func isNilCompare(pass *Pass, bin *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Info.ObjectOf(id) == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return terminates(b.List[len(b.List)-1])
}

// firstReceiverDeref finds a field access through the receiver (recv.f,
// *recv, recv[i]) inside n. Method calls on the receiver do not count —
// each target method is checked for nil-safety itself.
func firstReceiverDeref(pass *Pass, n ast.Node, recv types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok || pass.Info.ObjectOf(base) != recv {
				return true
			}
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				pos, found = n.Pos(), true
				return false
			}
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == recv {
				pos, found = n.Pos(), true
				return false
			}
		case *ast.IndexExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == recv {
				pos, found = n.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}
