package lint

import (
	"go/ast"
	"go/token"
)

// This file is the per-function control-flow layer of the flow-sensitive
// analyzers (lockorder, guardedby, lockbalance): a basic-block CFG built
// from go/ast alone. Blocks hold the statements and the branch/loop
// condition expressions that execute on a straight line; edges follow
// if/else arms, loop back-edges and exits, switch/select clauses
// (including fallthrough), and labeled break/continue. Returns and the
// reachable fall-off-the-end brace connect to a single virtual exit
// block, so path properties ("every exit leaves the lockset as it
// entered") are questions about edges into cfgExit. A panic() statement
// terminates its block with no successors: panicking paths run deferred
// unlocks on the way down, so they are exempt from balance checking by
// construction.
//
// goto is not modeled (the module does not use it). A function
// containing one gets imprecise=true and the flow-sensitive analyzers
// skip it rather than report from a wrong CFG.

// cfgBlock is one basic block: nodes execute in order, then control
// follows one of succs. A block whose last node is a ReturnStmt (or a
// reachable closing brace) has the cfg's exit among its successors.
type cfgBlock struct {
	index int
	nodes []ast.Node // ast.Stmt and condition/range ast.Expr, in order
	succs []*cfgBlock

	// exitPos is set on blocks that flow into the virtual exit: the
	// position balance findings are reported at (the return statement,
	// or the function's closing brace for fall-off-the-end).
	exitPos token.Pos
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	for _, cur := range b.succs {
		if cur == s {
			return
		}
	}
	b.succs = append(b.succs, s)
}

// funcCFG is one function body's control-flow graph.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock // virtual; no nodes, no successors
	// imprecise marks CFGs the builder could not model faithfully
	// (goto); flow-sensitive analyzers skip them.
	imprecise bool
}

// cfgBuilder threads the current block and the break/continue target
// stacks through the recursive statement walk.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// breakTargets / continueTargets are innermost-last stacks of
	// (label, target) pairs; an empty label entry is the innermost
	// enclosing loop/switch/select.
	breakTargets    []branchTarget
	continueTargets []branchTarget
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List, "")
	// Reachable fall-off-the-end: the closing brace is an exit.
	if b.cur != nil {
		b.cur.exitPos = body.Rbrace
		b.cur.addSucc(g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// add appends a straight-line node to the current block (starting an
// unreachable block if control already left, so later statements are
// still recorded for position-based lookups even when dead).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// terminate ends the current block with no successor (panic, or after
// an explicit transfer already linked elsewhere).
func (b *cfgBuilder) terminate() {
	b.cur = nil
}

func (b *cfgBuilder) stmtList(stmts []ast.Stmt, label string) {
	for i, s := range stmts {
		// Only the first statement of the list can own the incoming
		// label (a LabeledStmt wraps exactly one statement anyway).
		if i > 0 {
			label = ""
		}
		b.stmt(s, label)
	}
}

// stmt lowers one statement. label, when non-empty, names this
// statement (from an enclosing LabeledStmt) for labeled break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()

		b.cur = b.newBlock()
		condBlk.addSucc(b.cur)
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.cur.addSucc(after)
		}

		if s.Else != nil {
			b.cur = b.newBlock()
			condBlk.addSucc(b.cur)
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		} else {
			condBlk.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		if b.cur != nil {
			b.cur.addSucc(header)
		}
		after := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			post.addSucc(header)
		}
		b.cur = header
		if s.Cond != nil {
			b.add(s.Cond)
			header.addSucc(after)
		}
		b.pushLoop(label, after, post)
		body := b.newBlock()
		header.addSucc(body)
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		// The ranged expression evaluates once, before the loop.
		b.add(s.X)
		header := b.newBlock()
		if b.cur != nil {
			b.cur.addSucc(header)
		}
		after := b.newBlock()
		header.addSucc(after) // range can be empty
		b.cur = header
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.pushLoop(label, after, header)
		body := b.newBlock()
		header.addSucc(body)
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.cur.addSucc(header)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		b.switchClauses(s.Body.List, label, func(c ast.Stmt) []ast.Stmt {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				return append([]ast.Stmt{cc.Comm}, cc.Body...)
			}
			return cc.Body
		})

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.exitPos = s.Pos()
		b.cur.addSucc(b.g.exit)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, s.Label); t != nil {
				b.add(s)
				b.cur.addSucc(t)
				b.terminate()
				return
			}
		case token.CONTINUE:
			if t := findTarget(b.continueTargets, s.Label); t != nil {
				b.add(s)
				b.cur.addSucc(t)
				b.terminate()
				return
			}
		case token.FALLTHROUGH:
			// Handled by switchClauses; a stray one is recorded inert.
			b.add(s)
			return
		case token.GOTO:
			b.g.imprecise = true
			b.add(s)
			b.cur.addSucc(b.g.exit)
			b.terminate()
			return
		}
		// An unmatched break/continue label: give up on precision.
		b.g.imprecise = true
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// Deferred unlocks run during the unwind; no exit edge, so
			// lockbalance never charges a panicking path.
			b.terminate()
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, defer, go, send, incdec, empty:
		// straight-line.
		b.add(s)
	}
}

// switchClauses lowers switch/type-switch/select clause lists. comm
// extracts a clause's statement list for select (nil for switch, whose
// clauses are *ast.CaseClause).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, comm func(ast.Stmt) []ast.Stmt) {
	header := b.cur
	if header == nil {
		header = b.newBlock()
		b.cur = header
	}
	after := b.newBlock()
	b.pushSwitch(label, after)

	hasDefault := false
	// First build every clause's entry block so fallthrough can link
	// clause i to clause i+1's body.
	type clauseInfo struct {
		entry *cfgBlock
		stmts []ast.Stmt
		exprs []ast.Expr
	}
	infos := make([]clauseInfo, 0, len(clauses))
	for _, c := range clauses {
		ci := clauseInfo{entry: b.newBlock()}
		if comm != nil {
			ci.stmts = comm(c)
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		} else {
			cc := c.(*ast.CaseClause)
			ci.stmts = cc.Body
			ci.exprs = cc.List
			if cc.List == nil {
				hasDefault = true
			}
		}
		infos = append(infos, ci)
	}
	for i, ci := range infos {
		header.addSucc(ci.entry)
		b.cur = ci.entry
		for _, e := range ci.exprs {
			b.add(e)
		}
		fallsThrough := false
		if n := len(ci.stmts); n > 0 {
			if br, ok := ci.stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(ci.stmts, "")
		if b.cur != nil {
			if fallsThrough && i+1 < len(infos) {
				b.cur.addSucc(infos[i+1].entry)
			} else {
				b.cur.addSucc(after)
			}
		}
	}
	if !hasDefault {
		header.addSucc(after)
	}
	b.popSwitch()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: brk})
	b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushSwitch(label string, brk *cfgBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: brk})
}

func (b *cfgBuilder) popSwitch() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

// findTarget resolves a break/continue label against a target stack
// (innermost last). A nil label matches the innermost target; continue
// never matches a bare switch entry because pushSwitch only grows the
// break stack.
func findTarget(stack []branchTarget, label *ast.Ident) *cfgBlock {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
