package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestAtomicPlainRaceTwin pins the atomicplain analyzer to ground
// truth: the fixture under testdata/racetwin mixes an atomic writer
// with a plain reader of the same field, and BOTH verdicts must agree —
// the analyzer flags the plain access statically, and the Go race
// detector reports a DATA RACE when the program actually runs. If the
// analyzer's definition of "racy" ever drifts from the runtime's, this
// test breaks.
func TestAtomicPlainRaceTwin(t *testing.T) {
	dir := filepath.Join("testdata", "racetwin")

	// Static half: atomicplain must produce exactly the want'd finding.
	problems, err := CheckGolden(dir, NewAtomicPlain())
	if err != nil {
		t.Fatalf("CheckGolden(racetwin): %v", err)
	}
	for _, p := range problems {
		t.Error(p)
	}
	if t.Failed() {
		return
	}

	// Runtime half: the same program must trip the race detector.
	if testing.Short() {
		t.Skip("skipping go run -race in -short mode")
	}
	cmd := exec.Command("go", "run", "-race", "main.go")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GORACE=halt_on_error=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("race twin ran clean under -race; the static finding has no runtime counterpart:\n%s", out)
	}
	if !strings.Contains(string(out), "DATA RACE") {
		t.Fatalf("race twin failed without a DATA RACE report: %v\n%s", err, out)
	}
}
