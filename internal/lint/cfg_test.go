package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body for CFG construction.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f(a, b bool, xs []int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// exitEdgeCount counts blocks flowing into the virtual exit.
func exitEdgeCount(g *funcCFG) int {
	n := 0
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			if s == g.exit {
				n++
			}
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(parseBody(t, "x := 1\n_ = x"))
	if g.imprecise {
		t.Fatal("straight-line body marked imprecise")
	}
	if got := exitEdgeCount(g); got != 1 {
		t.Fatalf("exit edges = %d, want 1 (fall off the end)", got)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	g := buildCFG(parseBody(t, "if a {\n_ = 1\n} else {\n_ = 2\n}\n_ = 3"))
	if got := exitEdgeCount(g); got != 1 {
		t.Fatalf("exit edges = %d, want 1 (both arms rejoin)", got)
	}
}

func TestCFGEarlyReturnAddsExit(t *testing.T) {
	g := buildCFG(parseBody(t, "if a {\nreturn\n}\n_ = 1"))
	if got := exitEdgeCount(g); got != 2 {
		t.Fatalf("exit edges = %d, want 2 (early return + fall-off)", got)
	}
}

func TestCFGPanicTerminatesWithoutExitEdge(t *testing.T) {
	// The panic arm must NOT reach the exit: panicking paths are
	// exempt from lockset balance by construction.
	g := buildCFG(parseBody(t, "if a {\npanic(\"x\")\n}\n_ = 1"))
	if got := exitEdgeCount(g); got != 1 {
		t.Fatalf("exit edges = %d, want 1 (panic path terminates)", got)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildCFG(parseBody(t, "for a {\n_ = 1\n}\n_ = 2"))
	// The loop header must have two successors (body and after) and be
	// reachable from the body again (back edge).
	var header *cfgBlock
	for _, blk := range g.blocks {
		if len(blk.succs) == 2 {
			header = blk
			break
		}
	}
	if header == nil {
		t.Fatal("no two-way branch block found for loop header")
	}
	back := false
	for _, blk := range g.blocks {
		if blk == header {
			continue
		}
		for _, s := range blk.succs {
			if s == header {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge to the loop header")
	}
}

func TestCFGRangeCanBeEmpty(t *testing.T) {
	// range over an empty slice skips the body: the header needs an
	// edge straight to the after-block, or lockbalance would assume
	// loop bodies always run.
	g := buildCFG(parseBody(t, "for range xs {\n_ = 1\n}\nreturn"))
	if got := exitEdgeCount(g); got != 1 {
		t.Fatalf("exit edges = %d, want 1", got)
	}
}

func TestCFGSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := buildCFG(parseBody(t, "switch {\ncase a:\n_ = 1\ncase b:\nreturn\n}\n_ = 2"))
	if got := exitEdgeCount(g); got != 2 {
		t.Fatalf("exit edges = %d, want 2 (case return + fall-off)", got)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	body := `outer:
	for a {
		for b {
			break outer
		}
	}
	_ = 1`
	g := buildCFG(parseBody(t, body))
	if g.imprecise {
		t.Fatal("labeled break marked imprecise; target resolution failed")
	}
}

func TestCFGGotoIsImprecise(t *testing.T) {
	g := buildCFG(parseBody(t, "goto done\ndone:\n_ = 1"))
	if !g.imprecise {
		t.Fatal("goto must mark the CFG imprecise (analyzers skip it)")
	}
}
