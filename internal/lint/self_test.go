package lint

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestModuleIsClean runs the full production suite over this module —
// the same check `mcfslint ./...` and scripts/check.sh perform — so a
// regression in any checked invariant fails `go test ./...`, not just
// the lint gate.
func TestModuleIsClean(t *testing.T) {
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages; loader is missing the tree", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestWriteJSON covers the -json output contract: an indented array,
// stable field names, and an empty array (never null) with no findings.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want []", got)
	}

	diags := []Diagnostic{
		{Analyzer: "walltime", File: "x.go", Line: 3, Col: 9, Message: "time.Now reads the wall clock"},
		{Analyzer: "maporder", File: "y.go", Line: 7, Col: 2, Message: "append to \"keys\" inside range over map"},
	}
	buf.Reset()
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, field := range []string{`"analyzer"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("JSON output missing field %s:\n%s", field, buf.String())
		}
	}
	var back []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, diags) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, diags)
	}
}
