// Package memmodel simulates the memory hierarchy the model checker's
// state store lives in: a RAM budget, a swap area, and the visited-state
// hash table.
//
// The paper's evaluation is dominated by memory behavior: checking Ext4
// vs XFS consumed 105 GB of swap because XFS's 16 MB concrete states
// overflowed RAM, making that configuration 11x slower than Ext2 vs Ext4
// (Figure 2); the two-week VeriFS1 run (Figure 3) shows a throughput
// crash when Spin resized its visited-state hash table (~day 3), a slow
// decline as states spilled to swap, and a late rebound when the
// RAM hit rate rose. This package gives the explorer those mechanics:
//
//   - Store charges allocation for a concrete state; once the RAM budget
//     is exceeded, cold pages are pushed to swap at a per-page cost;
//   - Fetch charges swap-in time with probability proportional to the
//     fraction of stored bytes living in swap, scaled down by a hotness
//     factor (recently stored states are likelier to be resident);
//   - InsertVisited grows the hash table and charges a full rehash pass
//     whenever the load factor crosses the threshold — the Figure 3
//     throughput crash.
//
// Randomness is a deterministic internal LCG, so simulations reproduce.
package memmodel

import (
	"sync/atomic"
	"time"

	"mcfs/internal/simclock"
)

// PageSize is the swap granularity.
const PageSize = 4096

// SharedVisitedEntryBytes approximates one entry of a shared swarm
// visited table: a 16-byte abstract-state key, the expansion depth, and
// hash-map bucket overhead.
const SharedVisitedEntryBytes = 48

// Config sizes the memory system.
type Config struct {
	// RAMBytes is the memory available for storing concrete states.
	RAMBytes int64
	// SwapBytes is the swap capacity (0 = unlimited, like an overbooked
	// swap file; the paper's VM had 128 GB).
	SwapBytes int64
	// SwapOutCost and SwapInCost are per-page transfer costs (swap on a
	// hypervisor SSD in the paper).
	SwapOutCost time.Duration
	SwapInCost  time.Duration
	// InitialSlots is the visited-table capacity before the first
	// resize.
	InitialSlots int64
	// RehashPerEntry is the CPU cost per entry during a table resize.
	RehashPerEntry time.Duration
	// SlotBytes is the memory footprint per visited-table slot.
	SlotBytes int64
}

// DefaultConfig mirrors the paper's 64 GB RAM / 128 GB swap VM with
// SSD-backed swap.
func DefaultConfig() Config {
	return Config{
		RAMBytes:       64 << 30,
		SwapBytes:      128 << 30,
		SwapOutCost:    6 * time.Microsecond,
		SwapInCost:     8 * time.Microsecond,
		InitialSlots:   1 << 20,
		RehashPerEntry: 300 * time.Nanosecond,
		SlotBytes:      24,
	}
}

// Model tracks the state store's memory occupancy.
type Model struct {
	cfg   Config
	clock *simclock.Clock

	storedBytes int64 // total concrete-state bytes stored
	swapBytes   int64 // portion of storedBytes living in swap
	entries     int64 // visited-table entries
	slots       int64 // visited-table capacity
	resizes     int   // number of table resizes so far
	peakBytes   int64 // high-water mark of the total footprint

	// sharedVisited is the footprint charged by a shared swarm visited
	// table (SharedVisited.AttachMem). Atomic: any worker's discovery
	// grows every attached model, concurrently with that model's owner.
	sharedVisited atomic.Int64

	rng uint64
}

// ErrOutOfMemory is reported when both RAM and swap are exhausted.
type ErrOutOfMemory struct{}

func (ErrOutOfMemory) Error() string { return "memmodel: RAM and swap exhausted" }

// New builds a model charging costs to clock.
func New(cfg Config, clock *simclock.Clock) *Model {
	if cfg.InitialSlots <= 0 {
		cfg.InitialSlots = 1 << 20
	}
	return &Model{cfg: cfg, clock: clock, slots: cfg.InitialSlots, rng: 0x9E3779B97F4A7C15}
}

func (m *Model) charge(d time.Duration) {
	if m.clock != nil && d > 0 {
		m.clock.Advance(d)
	}
}

func (m *Model) rand() float64 {
	// xorshift64*
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	return float64(m.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// tableBytes is the visited table's current footprint.
func (m *Model) tableBytes() int64 { return m.slots * m.cfg.SlotBytes }

// notePeak updates the footprint high-water mark. Called from the
// owner's mutating paths only (Store, InsertVisited), so the peak —
// like the rest of the occupancy fields — needs no synchronization.
func (m *Model) notePeak() {
	if fp := m.storedBytes + m.tableBytes() + m.sharedVisited.Load(); fp > m.peakBytes {
		m.peakBytes = fp
	}
}

// ramAvailable is the RAM left for concrete states after the local
// visited table and any shared swarm table.
func (m *Model) ramAvailable() int64 {
	avail := m.cfg.RAMBytes - m.tableBytes() - m.sharedVisited.Load()
	if avail < 0 {
		return 0
	}
	return avail
}

// AddSharedVisited charges n bytes of shared visited-table growth.
// Safe to call from any goroutine — a swarm peer's discovery grows the
// one table every attached model accounts for.
func (m *Model) AddSharedVisited(n int64) {
	if m == nil {
		return
	}
	m.sharedVisited.Add(n)
}

// Store records a new concrete state of n bytes. Overflowing the RAM
// budget pushes pages to swap at SwapOutCost each.
func (m *Model) Store(n int64) error {
	if n <= 0 {
		return nil
	}
	m.storedBytes += n
	m.notePeak()
	overflow := m.storedBytes - m.ramAvailable()
	if overflow > m.swapBytes {
		newSwap := overflow - m.swapBytes
		if m.cfg.SwapBytes > 0 && overflow > m.cfg.SwapBytes {
			return ErrOutOfMemory{}
		}
		pages := (newSwap + PageSize - 1) / PageSize
		m.charge(time.Duration(pages) * m.cfg.SwapOutCost)
		m.swapBytes = overflow
	}
	return nil
}

// Release drops n bytes of stored state (a discarded checkpoint).
func (m *Model) Release(n int64) {
	m.storedBytes -= n
	if m.storedBytes < 0 {
		m.storedBytes = 0
	}
	if m.swapBytes > m.storedBytes {
		m.swapBytes = m.storedBytes
	}
}

// Fetch charges the cost of bringing a stored state of n bytes back for
// restoration. hotness in [0,1] scales down the probability that the
// state has been swapped out: 1 means certainly resident (just stored),
// 0 means subject to the global swap fraction.
func (m *Model) Fetch(n int64, hotness float64) {
	if n <= 0 || m.storedBytes == 0 || m.swapBytes == 0 {
		return
	}
	if hotness < 0 {
		hotness = 0
	}
	if hotness > 1 {
		hotness = 1
	}
	pSwapped := float64(m.swapBytes) / float64(m.storedBytes) * (1 - hotness)
	if m.rand() >= pSwapped {
		return // RAM hit
	}
	pages := (n + PageSize - 1) / PageSize
	m.charge(time.Duration(pages) * m.cfg.SwapInCost)
}

// InsertVisited records one new visited-table entry, resizing (and
// charging a rehash pass plus a memory spike) when the load factor
// crosses 3/4 — Spin's hash-table resize, the Figure 3 throughput crash.
func (m *Model) InsertVisited() {
	m.entries++
	defer m.notePeak()
	if m.entries*4 > m.slots*3 {
		m.charge(time.Duration(m.entries) * m.cfg.RehashPerEntry)
		// During the resize both tables exist: transient pressure pushes
		// states to swap.
		oldTable := m.tableBytes()
		m.slots *= 2
		m.resizes++
		transient := m.storedBytes + oldTable + m.tableBytes() - m.cfg.RAMBytes
		if transient > m.swapBytes {
			pages := (transient - m.swapBytes + PageSize - 1) / PageSize
			m.charge(time.Duration(pages) * m.cfg.SwapOutCost)
			m.swapBytes = transient
			if m.swapBytes > m.storedBytes {
				m.swapBytes = m.storedBytes
			}
		}
	}
}

// Stats reports the current occupancy.
type Stats struct {
	StoredBytes int64
	SwapBytes   int64
	Entries     int64
	Slots       int64
	Resizes     int
	// SharedVisitedBytes is the footprint of a shared swarm visited
	// table this model is attached to (zero outside shared-table swarm
	// runs). It is charged against the RAM budget like the local table.
	SharedVisitedBytes int64
	// PeakBytes is the high-water mark of the total footprint (stored
	// states + visited table + shared table), including transient resize
	// pressure — the number benchmark trajectories track.
	PeakBytes int64
}

// Stats returns a snapshot of the model.
func (m *Model) Stats() Stats {
	return Stats{
		StoredBytes:        m.storedBytes,
		SwapBytes:          m.swapBytes,
		Entries:            m.entries,
		Slots:              m.slots,
		Resizes:            m.resizes,
		SharedVisitedBytes: m.sharedVisited.Load(),
		PeakBytes:          m.peakBytes,
	}
}
