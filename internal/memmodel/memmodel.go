// Package memmodel simulates the memory hierarchy the model checker's
// state store lives in: a RAM budget, a swap area, and the visited-state
// hash table.
//
// The paper's evaluation is dominated by memory behavior: checking Ext4
// vs XFS consumed 105 GB of swap because XFS's 16 MB concrete states
// overflowed RAM, making that configuration 11x slower than Ext2 vs Ext4
// (Figure 2); the two-week VeriFS1 run (Figure 3) shows a throughput
// crash when Spin resized its visited-state hash table (~day 3), a slow
// decline as states spilled to swap, and a late rebound when the
// RAM hit rate rose. This package gives the explorer those mechanics:
//
//   - Store charges allocation for a concrete state; once the RAM budget
//     is exceeded, cold pages are pushed to swap at a per-page cost;
//   - Fetch charges swap-in time with probability proportional to the
//     fraction of stored bytes living in swap, scaled down by a hotness
//     factor (recently stored states are likelier to be resident);
//   - InsertVisited grows the hash table and charges a full rehash pass
//     whenever the load factor crosses the threshold — the Figure 3
//     throughput crash.
//
// Randomness is a deterministic internal LCG, so simulations reproduce.
package memmodel

import (
	"sync/atomic"
	"time"

	"mcfs/internal/simclock"
)

// PageSize is the swap granularity.
const PageSize = 4096

// SharedVisitedEntryBytes approximates one entry of a shared swarm
// visited table: a 16-byte abstract-state key, the expansion depth, and
// hash-map bucket overhead.
const SharedVisitedEntryBytes = 48

// Config sizes the memory system.
type Config struct {
	// RAMBytes is the memory available for storing concrete states.
	RAMBytes int64
	// SwapBytes is the swap capacity (0 = unlimited, like an overbooked
	// swap file; the paper's VM had 128 GB).
	SwapBytes int64
	// SwapOutCost and SwapInCost are per-page transfer costs (swap on a
	// hypervisor SSD in the paper).
	SwapOutCost time.Duration
	SwapInCost  time.Duration
	// InitialSlots is the visited-table capacity before the first
	// resize.
	InitialSlots int64
	// RehashPerEntry is the CPU cost per entry during a table resize.
	RehashPerEntry time.Duration
	// SlotBytes is the memory footprint per visited-table slot.
	SlotBytes int64
}

// DefaultConfig mirrors the paper's 64 GB RAM / 128 GB swap VM with
// SSD-backed swap.
func DefaultConfig() Config {
	return Config{
		RAMBytes:       64 << 30,
		SwapBytes:      128 << 30,
		SwapOutCost:    6 * time.Microsecond,
		SwapInCost:     8 * time.Microsecond,
		InitialSlots:   1 << 20,
		RehashPerEntry: 300 * time.Nanosecond,
		SlotBytes:      24,
	}
}

// Model tracks the state store's memory occupancy.
type Model struct {
	cfg   Config
	clock *simclock.Clock

	storedBytes int64 // total concrete-state bytes stored
	swapBytes   int64 // portion of storedBytes living in swap
	entries     int64 // visited-table entries
	slots       int64 // visited-table capacity
	resizes     int   // number of table resizes so far
	peakBytes   int64 // high-water mark of the total footprint

	// sharedVisited is the footprint charged by a shared swarm visited
	// table (SharedVisited.AttachMem). Atomic: any worker's discovery
	// grows every attached model, concurrently with that model's owner.
	sharedVisited atomic.Int64

	// budget and the watermark fractions define the governor's pressure
	// levels; zero budget means ungoverned (Pressure always None).
	// aboveSoft/softHits implement upward-crossing detection; owner
	// fields like the occupancy counters.
	budget    int64
	softFrac  float64
	hardFrac  float64
	aboveSoft bool
	softHits  int64

	// visitedEvictions and fidelityDowngrades are governor bookkeeping.
	// Atomic: the governor acts on behalf of one worker but notes the
	// action on every attached model.
	visitedEvictions   atomic.Int64
	fidelityDowngrades atomic.Int64

	rng uint64
}

// Pressure is the footprint's position relative to the budget
// watermarks.
type Pressure int

const (
	// PressureNone: below the soft watermark (or no budget set).
	PressureNone Pressure = iota
	// PressureSoft: past the soft watermark — start shedding cheap
	// state.
	PressureSoft
	// PressureHard: past the hard watermark — degrade now or die soon.
	PressureHard
)

// Default watermark fractions of the budget.
const (
	DefaultSoftWatermark = 0.85
	DefaultHardWatermark = 0.95
)

// ErrOutOfMemory is reported when both RAM and swap are exhausted.
type ErrOutOfMemory struct{}

func (ErrOutOfMemory) Error() string { return "memmodel: RAM and swap exhausted" }

// New builds a model charging costs to clock.
func New(cfg Config, clock *simclock.Clock) *Model {
	if cfg.InitialSlots <= 0 {
		cfg.InitialSlots = 1 << 20
	}
	return &Model{cfg: cfg, clock: clock, slots: cfg.InitialSlots, rng: 0x9E3779B97F4A7C15}
}

func (m *Model) charge(d time.Duration) {
	if m.clock != nil && d > 0 {
		m.clock.Advance(d)
	}
}

func (m *Model) rand() float64 {
	// xorshift64*
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	return float64(m.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// tableBytes is the visited table's current footprint.
func (m *Model) tableBytes() int64 { return m.slots * m.cfg.SlotBytes }

// notePeak updates the footprint high-water mark. Called from the
// owner's mutating paths only (Store, InsertVisited), so the peak —
// like the rest of the occupancy fields — needs no synchronization.
func (m *Model) notePeak() {
	if fp := m.storedBytes + m.tableBytes() + m.sharedVisited.Load(); fp > m.peakBytes {
		m.peakBytes = fp
	}
}

// ramAvailable is the RAM left for concrete states after the local
// visited table and any shared swarm table.
func (m *Model) ramAvailable() int64 {
	avail := m.cfg.RAMBytes - m.tableBytes() - m.sharedVisited.Load()
	if avail < 0 {
		return 0
	}
	return avail
}

// SetBudget arms the pressure watermarks: soft and hard are fractions
// of budget (defaults when <= 0). A budget <= 0 disarms them. Safe on
// a nil model.
func (m *Model) SetBudget(budget int64, soft, hard float64) {
	if m == nil {
		return
	}
	if soft <= 0 {
		soft = DefaultSoftWatermark
	}
	if hard <= 0 {
		hard = DefaultHardWatermark
	}
	if hard < soft {
		hard = soft
	}
	m.budget, m.softFrac, m.hardFrac = budget, soft, hard
}

// Budget reports the armed budget (0 when ungoverned). Safe on a nil
// model.
func (m *Model) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// Footprint is the current total occupancy: stored concrete states,
// the local visited table, and any shared swarm table. Owner-goroutine,
// like the occupancy counters it reads.
func (m *Model) Footprint() int64 {
	if m == nil {
		return 0
	}
	return m.storedBytes + m.tableBytes() + m.sharedVisited.Load()
}

// Pressure classifies the footprint against the budget watermarks and
// counts upward soft-watermark crossings. Owner-goroutine only (it
// mutates the crossing detector). Safe on a nil model.
func (m *Model) Pressure() Pressure {
	if m == nil || m.budget <= 0 {
		return PressureNone
	}
	fp := m.Footprint()
	soft := int64(float64(m.budget) * m.softFrac)
	if fp >= soft {
		if !m.aboveSoft {
			m.aboveSoft = true
			m.softHits++
		}
	} else {
		m.aboveSoft = false
	}
	if fp >= int64(float64(m.budget)*m.hardFrac) {
		return PressureHard
	}
	if fp >= soft {
		return PressureSoft
	}
	return PressureNone
}

// NoteVisitedEvictions records n visited-table entries evicted under
// pressure. Safe from any goroutine and on a nil model.
func (m *Model) NoteVisitedEvictions(n int64) {
	if m == nil {
		return
	}
	m.visitedEvictions.Add(n)
}

// NoteFidelityDowngrade records one visited-table fidelity migration.
// Safe from any goroutine and on a nil model.
func (m *Model) NoteFidelityDowngrade() {
	if m == nil {
		return
	}
	m.fidelityDowngrades.Add(1)
}

// AddSharedVisited charges n bytes of shared visited-table growth.
// Safe to call from any goroutine — a swarm peer's discovery grows the
// one table every attached model accounts for.
func (m *Model) AddSharedVisited(n int64) {
	if m == nil {
		return
	}
	m.sharedVisited.Add(n)
}

// Store records a new concrete state of n bytes. Overflowing the RAM
// budget pushes pages to swap at SwapOutCost each.
func (m *Model) Store(n int64) error {
	if n <= 0 {
		return nil
	}
	m.storedBytes += n
	m.notePeak()
	overflow := m.storedBytes - m.ramAvailable()
	if overflow > m.swapBytes {
		newSwap := overflow - m.swapBytes
		if m.cfg.SwapBytes > 0 && overflow > m.cfg.SwapBytes {
			return ErrOutOfMemory{}
		}
		pages := (newSwap + PageSize - 1) / PageSize
		m.charge(time.Duration(pages) * m.cfg.SwapOutCost)
		m.swapBytes = overflow
	}
	return nil
}

// Release drops n bytes of stored state (a discarded checkpoint).
func (m *Model) Release(n int64) {
	m.storedBytes -= n
	if m.storedBytes < 0 {
		m.storedBytes = 0
	}
	if m.swapBytes > m.storedBytes {
		m.swapBytes = m.storedBytes
	}
}

// Fetch charges the cost of bringing a stored state of n bytes back for
// restoration. hotness in [0,1] scales down the probability that the
// state has been swapped out: 1 means certainly resident (just stored),
// 0 means subject to the global swap fraction.
func (m *Model) Fetch(n int64, hotness float64) {
	if n <= 0 || m.storedBytes == 0 || m.swapBytes == 0 {
		return
	}
	if hotness < 0 {
		hotness = 0
	}
	if hotness > 1 {
		hotness = 1
	}
	pSwapped := float64(m.swapBytes) / float64(m.storedBytes) * (1 - hotness)
	if m.rand() >= pSwapped {
		return // RAM hit
	}
	pages := (n + PageSize - 1) / PageSize
	m.charge(time.Duration(pages) * m.cfg.SwapInCost)
}

// InsertVisited records one new visited-table entry, resizing (and
// charging a rehash pass plus a memory spike) when the load factor
// crosses 3/4 — Spin's hash-table resize, the Figure 3 throughput crash.
func (m *Model) InsertVisited() {
	m.entries++
	defer m.notePeak()
	if m.entries*4 > m.slots*3 {
		m.charge(time.Duration(m.entries) * m.cfg.RehashPerEntry)
		// During the resize both tables exist: transient pressure pushes
		// states to swap.
		oldTable := m.tableBytes()
		m.slots *= 2
		m.resizes++
		transient := m.storedBytes + oldTable + m.tableBytes() - m.cfg.RAMBytes
		if transient > m.swapBytes {
			pages := (transient - m.swapBytes + PageSize - 1) / PageSize
			m.charge(time.Duration(pages) * m.cfg.SwapOutCost)
			m.swapBytes = transient
			if m.swapBytes > m.storedBytes {
				m.swapBytes = m.storedBytes
			}
		}
	}
}

// Stats reports the current occupancy.
type Stats struct {
	StoredBytes int64
	SwapBytes   int64
	Entries     int64
	Slots       int64
	Resizes     int
	// SharedVisitedBytes is the footprint of a shared swarm visited
	// table this model is attached to (zero outside shared-table swarm
	// runs). It is charged against the RAM budget like the local table.
	SharedVisitedBytes int64
	// PeakBytes is the high-water mark of the total footprint (stored
	// states + visited table + shared table), including transient resize
	// pressure — the number benchmark trajectories track.
	PeakBytes int64
	// VisitedEvictions counts visited-table entries evicted under
	// memory pressure, and FidelityDowngrades counts visited-table
	// backend migrations (exact→compact→bitstate) — both zero outside
	// governed runs.
	VisitedEvictions   int64
	FidelityDowngrades int64
	// SoftWatermarkHits counts upward crossings of the soft budget
	// watermark (zero without a budget).
	SoftWatermarkHits int64
}

// Stats returns a snapshot of the model.
func (m *Model) Stats() Stats {
	return Stats{
		StoredBytes:        m.storedBytes,
		SwapBytes:          m.swapBytes,
		Entries:            m.entries,
		Slots:              m.slots,
		Resizes:            m.resizes,
		SharedVisitedBytes: m.sharedVisited.Load(),
		PeakBytes:          m.peakBytes,
		VisitedEvictions:   m.visitedEvictions.Load(),
		FidelityDowngrades: m.fidelityDowngrades.Load(),
		SoftWatermarkHits:  m.softHits,
	}
}
