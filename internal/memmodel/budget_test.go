package memmodel

import "testing"

// budgetModel builds a model whose footprint is exactly what the test
// stores or bills: one slot of zero bytes, so the watermark arithmetic
// has no table term.
func budgetModel() *Model {
	return New(Config{InitialSlots: 1, SlotBytes: 0}, nil)
}

func TestPressureWatermarks(t *testing.T) {
	m := budgetModel()
	if got := m.Pressure(); got != PressureNone {
		t.Fatalf("unbudgeted pressure = %v, want none", got)
	}

	m.SetBudget(1000, 0, 0) // defaults: soft 850, hard 950
	if got := m.Budget(); got != 1000 {
		t.Fatalf("Budget = %d, want 1000", got)
	}
	for _, tc := range []struct {
		stored int64
		want   Pressure
	}{
		{840, PressureNone},
		{850, PressureSoft},
		{949, PressureSoft},
		{950, PressureHard},
	} {
		m.storedBytes = tc.stored
		if got := m.Pressure(); got != tc.want {
			t.Errorf("footprint %d: pressure = %v, want %v", tc.stored, got, tc.want)
		}
	}

	// Custom fractions.
	m.SetBudget(1000, 0.5, 0.9)
	m.storedBytes = 600
	if got := m.Pressure(); got != PressureSoft {
		t.Errorf("custom soft: pressure = %v, want soft", got)
	}

	// Hard is clamped to at least soft: an inverted pair degenerates to
	// one watermark rather than a hard band below the soft one.
	m.SetBudget(1000, 0.8, 0.2)
	m.storedBytes = 850
	if got := m.Pressure(); got != PressureHard {
		t.Errorf("clamped hard: pressure = %v, want hard", got)
	}
	m.storedBytes = 700
	if got := m.Pressure(); got != PressureNone {
		t.Errorf("below clamped pair: pressure = %v, want none", got)
	}

	// Disarm.
	m.SetBudget(0, 0, 0)
	m.storedBytes = 1 << 40
	if got := m.Pressure(); got != PressureNone {
		t.Errorf("disarmed pressure = %v, want none", got)
	}
}

// TestSoftWatermarkHits checks the crossing detector: sustained
// pressure is one hit; dropping below and climbing back is another.
func TestSoftWatermarkHits(t *testing.T) {
	m := budgetModel()
	m.SetBudget(1000, 0, 0)

	m.storedBytes = 800
	m.Pressure()
	if got := m.Stats().SoftWatermarkHits; got != 0 {
		t.Fatalf("hits below soft = %d, want 0", got)
	}

	m.storedBytes = 900
	m.Pressure()
	m.Pressure() // still above: same crossing, no second hit
	if got := m.Stats().SoftWatermarkHits; got != 1 {
		t.Fatalf("hits under sustained pressure = %d, want 1", got)
	}

	m.storedBytes = 800
	m.Pressure() // dropped below: re-arm the detector
	m.storedBytes = 960
	m.Pressure() // crossed again (straight past hard still counts soft)
	if got := m.Stats().SoftWatermarkHits; got != 2 {
		t.Fatalf("hits after recrossing = %d, want 2", got)
	}
}

// TestFootprintTerms checks Footprint sums all three occupancy terms —
// the quantity the governor's watermarks act on.
func TestFootprintTerms(t *testing.T) {
	m := New(Config{RAMBytes: 1 << 30, InitialSlots: 10, SlotBytes: 24}, nil)
	if got := m.Footprint(); got != 240 {
		t.Fatalf("empty footprint = %d, want table-only 240", got)
	}
	if err := m.Store(1000); err != nil {
		t.Fatal(err)
	}
	m.AddSharedVisited(500)
	if got := m.Footprint(); got != 240+1000+500 {
		t.Fatalf("footprint = %d, want %d", got, 240+1000+500)
	}
	m.AddSharedVisited(-500)
	if got := m.Footprint(); got != 1240 {
		t.Fatalf("footprint after shared release = %d, want 1240", got)
	}
}

// TestDegradationStats checks the visited-degradation counters flow
// through Stats.
func TestDegradationStats(t *testing.T) {
	m := budgetModel()
	m.NoteVisitedEvictions(7)
	m.NoteVisitedEvictions(3)
	m.NoteFidelityDowngrade()
	s := m.Stats()
	if s.VisitedEvictions != 10 {
		t.Errorf("VisitedEvictions = %d, want 10", s.VisitedEvictions)
	}
	if s.FidelityDowngrades != 1 {
		t.Errorf("FidelityDowngrades = %d, want 1", s.FidelityDowngrades)
	}
}

// TestNilModelBudget checks the nil-model paths the facade leans on.
func TestNilModelBudget(t *testing.T) {
	var m *Model
	m.SetBudget(100, 0, 0)
	if m.Budget() != 0 || m.Footprint() != 0 || m.Pressure() != PressureNone {
		t.Fatal("nil model must report zero budget, footprint, pressure")
	}
	m.NoteVisitedEvictions(1)
	m.NoteFidelityDowngrade()
	m.AddSharedVisited(1)
}
