package memmodel

import (
	"testing"
	"time"

	"mcfs/internal/simclock"
)

func smallConfig() Config {
	return Config{
		RAMBytes:       1 << 20, // 1 MiB
		SwapBytes:      4 << 20,
		SwapOutCost:    10 * time.Microsecond,
		SwapInCost:     12 * time.Microsecond,
		InitialSlots:   16,
		RehashPerEntry: time.Microsecond,
		SlotBytes:      24,
	}
}

func TestStoreWithinRAMIsFree(t *testing.T) {
	clk := simclock.New()
	m := New(smallConfig(), clk)
	if err := m.Store(256 * 1024); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 0 {
		t.Errorf("in-RAM store charged %v", clk.Now())
	}
	if m.Stats().SwapBytes != 0 {
		t.Errorf("swap used: %d", m.Stats().SwapBytes)
	}
}

func TestStoreOverflowsToSwap(t *testing.T) {
	clk := simclock.New()
	m := New(smallConfig(), clk)
	if err := m.Store(2 << 20); err != nil { // 2 MiB > 1 MiB RAM
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SwapBytes == 0 {
		t.Fatal("no swap used despite RAM overflow")
	}
	if clk.Now() == 0 {
		t.Error("swap-out charged no time")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(smallConfig(), simclock.New())
	if err := m.Store(10 << 20); err == nil { // > RAM + swap
		t.Error("no error when exceeding RAM+swap")
	}
}

func TestReleaseShrinksFootprint(t *testing.T) {
	m := New(smallConfig(), simclock.New())
	if err := m.Store(2 << 20); err != nil {
		t.Fatal(err)
	}
	m.Release(2 << 20)
	st := m.Stats()
	if st.StoredBytes != 0 || st.SwapBytes != 0 {
		t.Errorf("after release: %+v", st)
	}
	// Over-release clamps.
	m.Release(1 << 20)
	if m.Stats().StoredBytes != 0 {
		t.Error("negative stored bytes")
	}
}

func TestFetchChargesWhenSwapped(t *testing.T) {
	clk := simclock.New()
	m := New(smallConfig(), clk)
	if err := m.Store(4 << 20); err != nil { // mostly swapped
		t.Fatal(err)
	}
	before := clk.Now()
	charged := false
	for i := 0; i < 50; i++ {
		m.Fetch(256*1024, 0)
		if clk.Now() > before {
			charged = true
			break
		}
	}
	if !charged {
		t.Error("50 cold fetches with 3/4 swap fraction charged nothing")
	}
	// Perfectly hot fetches never swap in.
	before = clk.Now()
	for i := 0; i < 50; i++ {
		m.Fetch(256*1024, 1)
	}
	if clk.Now() != before {
		t.Error("hot fetch charged swap-in")
	}
}

func TestVisitedTableResize(t *testing.T) {
	clk := simclock.New()
	m := New(smallConfig(), clk)
	slots0 := m.Stats().Slots
	for i := 0; i < 13; i++ { // 13 > 16*3/4
		m.InsertVisited()
	}
	st := m.Stats()
	if st.Slots <= slots0 {
		t.Errorf("table did not resize: %d -> %d", slots0, st.Slots)
	}
	if st.Resizes == 0 {
		t.Error("no resize recorded")
	}
	if clk.Now() == 0 {
		t.Error("resize charged no rehash time")
	}
}

func TestResizeCausesMemorySpike(t *testing.T) {
	cfg := smallConfig()
	cfg.SlotBytes = 4096 // make the table dominate RAM
	cfg.InitialSlots = 128
	clk := simclock.New()
	m := New(cfg, clk)
	if err := m.Store(400 * 1024); err != nil {
		t.Fatal(err)
	}
	preSwap := m.Stats().SwapBytes
	for i := 0; i < 100; i++ {
		m.InsertVisited()
	}
	if m.Stats().SwapBytes <= preSwap {
		t.Error("table growth caused no swap pressure")
	}
}

func TestDeterministicRandom(t *testing.T) {
	run := func() time.Duration {
		clk := simclock.New()
		m := New(smallConfig(), clk)
		if err := m.Store(4 << 20); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			m.Fetch(64*1024, 0.3)
		}
		return clk.Now()
	}
	if run() != run() {
		t.Error("fetch randomness not deterministic")
	}
}

func TestDefaultConfigMatchesPaperVM(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.RAMBytes != 64<<30 {
		t.Errorf("RAM = %d, want 64 GiB (the paper's VM)", cfg.RAMBytes)
	}
	if cfg.SwapBytes != 128<<30 {
		t.Errorf("swap = %d, want 128 GiB", cfg.SwapBytes)
	}
}

func TestSharedVisitedAccounting(t *testing.T) {
	clk := simclock.New()
	m := New(smallConfig(), clk)
	// Fill RAM to just under the budget left after the local table.
	if err := m.Store(1<<20 - m.tableBytes() - 1024); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SwapBytes != 0 {
		t.Fatal("store spilled before shared pressure was applied")
	}
	// A shared swarm table claiming RAM squeezes the stored states out.
	m.AddSharedVisited(100 * SharedVisitedEntryBytes)
	if err := m.Store(1024); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SharedVisitedBytes != 100*SharedVisitedEntryBytes {
		t.Errorf("SharedVisitedBytes = %d, want %d", st.SharedVisitedBytes, 100*SharedVisitedEntryBytes)
	}
	if st.SwapBytes == 0 {
		t.Error("shared visited-table pressure caused no swap spill")
	}

	// Nil receiver and concurrent growth must both be safe.
	var nilModel *Model
	nilModel.AddSharedVisited(64)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			m.AddSharedVisited(SharedVisitedEntryBytes)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		m.ramAvailable()
	}
	<-done
	want := int64((100 + 1000) * SharedVisitedEntryBytes)
	if got := m.Stats().SharedVisitedBytes; got != want {
		t.Errorf("after concurrent growth: %d, want %d", got, want)
	}
}

func TestPeakBytesHighWaterMark(t *testing.T) {
	m := New(Config{RAMBytes: 1 << 20, InitialSlots: 4, SlotBytes: 24}, nil)
	if p := m.Stats().PeakBytes; p != 0 {
		t.Errorf("fresh model peak = %d, want 0", p)
	}
	if err := m.Store(1000); err != nil {
		t.Fatal(err)
	}
	peak := m.Stats().PeakBytes
	if want := int64(1000 + 4*24); peak != want {
		t.Errorf("peak after store = %d, want %d", peak, want)
	}
	// Releasing state must not lower the high-water mark.
	m.Release(1000)
	if err := m.Store(500); err != nil {
		t.Fatal(err)
	}
	if p := m.Stats().PeakBytes; p != peak {
		t.Errorf("peak after release+smaller store = %d, want %d", p, peak)
	}
	// Table growth raises the footprint past the old mark.
	for i := 0; i < 50; i++ {
		m.InsertVisited()
	}
	if p := m.Stats().PeakBytes; p <= peak {
		t.Errorf("peak after table growth = %d, want > %d", p, peak)
	}
}
